"""Performance trajectory tracking (``BENCH_history.jsonl``).

``BENCH_core.json`` is a snapshot: it shows how fast the core loop is
*now*, and is overwritten on every profile run.  This module keeps the
*trajectory*: every ``wsrs profile`` run appends one compact record -
git revision, date, and per-gear sim-KIPS for every configuration - to
an append-only JSONL file, so PR-over-PR performance wins (and losses)
stay visible in the repository history.

The file doubles as a regression gate.  ``check_regression`` compares a
fresh profile record against the last *comparable* committed record
(same benchmark, instruction counts and quick flag - KIPS from
different workloads are not comparable) and flags any configuration
whose specialized-gear KIPS dropped below ``tolerance`` times the
recorded value.  The tolerance is deliberately loose: wall-clock
throughput varies by tens of percent across machines and CI runners,
and the gate is there to catch structural regressions - a
despecialization, an accidental O(n^2) - not noise.
"""

from __future__ import annotations

import json
import subprocess
import time
from typing import Dict, List, Optional, Tuple

#: Schema version of one history line.
SCHEMA = 1

DEFAULT_HISTORY = "BENCH_history.jsonl"

#: Default regression tolerance: fail when a configuration's
#: specialized-gear KIPS falls below this fraction of the last
#: committed record's value.
DEFAULT_TOLERANCE = 0.5

#: The per-cell keys copied from a profile record into a history line.
_GEAR_KEYS = ("reference_kips", "event_horizon_kips", "specialized_kips")


def git_revision(default: str = "unknown") -> str:
    """The current short git revision, or ``default`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return default
    revision = out.stdout.strip()
    return revision if out.returncode == 0 and revision else default


def history_record(record: Dict, sha: Optional[str] = None,
                   date: Optional[str] = None) -> Dict:
    """Compress a ``BENCH_core.json`` record into one history line."""
    return {
        "schema": SCHEMA,
        "kind": "profile",
        "sha": sha if sha is not None else git_revision(),
        "date": date if date is not None
        else time.strftime("%Y-%m-%d"),
        "benchmark": record["benchmark"],
        "measure": record["measure"],
        "warmup": record["warmup"],
        "quick": record["quick"],
        "identical": record["identical"],
        "cells": {
            cell["config"]: {key: cell[key] for key in _GEAR_KEYS}
            for cell in record["cells"]
        },
    }


def append_record(record: Dict, path: str = DEFAULT_HISTORY,
                  sha: Optional[str] = None,
                  date: Optional[str] = None) -> Dict:
    """Append one history line for a profile ``record``; returns it."""
    line = history_record(record, sha=sha, date=date)
    with open(path, "a") as handle:
        json.dump(line, handle, sort_keys=True)
        handle.write("\n")
    return line


def fleet_history_record(record: Dict, sha: Optional[str] = None,
                         date: Optional[str] = None) -> Dict:
    """Compress a ``BENCH_fleet.json`` record into one history line.

    Fleet lines carry ``kind: "fleet"`` so :func:`last_comparable` -
    which gates single-process profile runs - never mistakes a scaling
    record for a profile baseline.
    """
    return {
        "schema": SCHEMA,
        "kind": "fleet",
        "sha": sha if sha is not None else git_revision(),
        "date": date if date is not None
        else time.strftime("%Y-%m-%d"),
        "benchmark": record["benchmark"],
        "measure": record["measure"],
        "warmup": record["warmup"],
        "identical": record["identical"],
        "speedup": record["speedup"],
        "scaling": {
            str(point["workers"]): {
                "throughput_jobs_per_s": point["compute"]
                ["throughput_jobs_per_s"],
                "p95_ms": point["compute"]["latency_ms"]["p95"],
            }
            for point in record["scaling"]
        },
    }


def append_fleet_record(record: Dict, path: str = DEFAULT_HISTORY,
                        sha: Optional[str] = None,
                        date: Optional[str] = None) -> Dict:
    """Append one fleet scaling line to the history; returns it."""
    line = fleet_history_record(record, sha=sha, date=date)
    with open(path, "a") as handle:
        json.dump(line, handle, sort_keys=True)
        handle.write("\n")
    return line


def load_history(path: str = DEFAULT_HISTORY) -> List[Dict]:
    """Every history line, oldest first (empty when the file is absent)."""
    try:
        with open(path) as handle:
            return [json.loads(line) for line in handle
                    if line.strip()]
    except FileNotFoundError:
        return []


def last_comparable(history: List[Dict], record: Dict) -> Optional[Dict]:
    """The newest history line measured under the same conditions."""
    for line in reversed(history):
        if (line.get("kind", "profile") == "profile"
                and line.get("benchmark") == record["benchmark"]
                and line.get("measure") == record["measure"]
                and line.get("warmup") == record["warmup"]
                and line.get("quick") == record["quick"]):
            return line
    return None


def check_regression(
    record: Dict,
    path: str = DEFAULT_HISTORY,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[bool, List[str]]:
    """Gate a fresh profile ``record`` against the committed history.

    Returns ``(ok, messages)``.  ``ok`` is True when no comparable
    record exists (nothing to gate against) or every configuration's
    specialized-gear KIPS is at least ``tolerance`` times the last
    committed value.  ``messages`` explains every failing cell.
    """
    baseline = last_comparable(load_history(path), record)
    if baseline is None:
        return True, [f"no comparable record in {path}; nothing to gate"]
    messages: List[str] = []
    for cell in record["cells"]:
        before = baseline["cells"].get(cell["config"])
        if before is None:
            continue
        floor = before["specialized_kips"] * tolerance
        now = cell["specialized_kips"]
        if now < floor:
            messages.append(
                f"{cell['config']}: specialized gear at {now:.1f} KIPS, "
                f"below {tolerance:.0%} of the committed "
                f"{before['specialized_kips']:.1f} KIPS "
                f"(sha {baseline.get('sha', '?')})")
    return not messages, messages
