"""Experiment driver for Figure 4 (IPC across configurations).

Simulates the twelve benchmarks on the six configurations of section
5.2.1 and prints IPC per (benchmark, configuration), plus the relation
checks the paper's analysis rests on:

* Write Specialization alone performs at the conventional level on
  integer codes and marginally better on FP codes (larger instruction
  window from the larger register set);
* the WSRS machine with the RC allocation policy stays within a few
  percent of the conventional machine;
* the RM policy performs at or below RC, with the largest losses on the
  high-IPC FP codes (wupwise, facerec).

The absolute IPC values differ from the paper's (different workload
substrate - see DESIGN.md); the relations are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.config import figure4_configs
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    RunResult,
    format_ipc_table,
    run_matrix,
)
from repro.trace.profiles import FP_BENCHMARKS, INTEGER_BENCHMARKS

#: "the performance always stays within a 3% difference margin" (RC);
#: we allow a small measurement slack on top for the short slices.
RC_MARGIN = 0.05
#: WS must never lose measurably against the conventional machine.
WS_MARGIN = 0.02


@dataclass
class Figure4Report:
    """Results plus the relation-check verdicts."""

    results: Dict[str, Dict[str, RunResult]]
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def ipc(self, benchmark: str, config: str) -> float:
        return self.results[benchmark][config].ipc


def check_relations(results: Dict[str, Dict[str, RunResult]]) -> List[str]:
    """The Figure 4 shape claims, as explicit checks."""
    violations: List[str] = []
    for benchmark, row in results.items():
        base = row["RR 256"].ipc
        if not base:
            violations.append(f"{benchmark}: baseline produced zero IPC")
            continue
        for ws_name in ("WSRR 384", "WSRR 512"):
            if row[ws_name].ipc < base * (1 - WS_MARGIN):
                violations.append(
                    f"{benchmark}: {ws_name} IPC {row[ws_name].ipc:.3f} "
                    f"more than {WS_MARGIN:.0%} below baseline {base:.3f}")
        for rc_name in ("WSRS RC S 384", "WSRS RC S 512"):
            if row[rc_name].ipc < base * (1 - RC_MARGIN):
                violations.append(
                    f"{benchmark}: {rc_name} IPC {row[rc_name].ipc:.3f} "
                    f"more than {RC_MARGIN:.0%} below baseline {base:.3f}")
    # FP window effect: WS-512 should improve on the baseline somewhere.
    fp_gains = [results[b]["WSRR 512"].ipc - results[b]["RR 256"].ipc
                for b in FP_BENCHMARKS if b in results]
    if fp_gains and max(fp_gains) <= 0:
        violations.append("WS shows no window benefit on any FP benchmark")
    return violations


def run(measure: int = DEFAULT_MEASURE, warmup: int = DEFAULT_WARMUP,
        benchmarks: List[str] | None = None, seed: int = 1,
        print_table: bool = True,
        workers: int | None = None) -> Figure4Report:
    """Regenerate Figure 4.

    ``workers`` is forwarded to :func:`repro.experiments.runner.run_matrix`
    (``None``: all cores; 1: the serial determinism path).
    """
    configs = figure4_configs()
    names = [config.name for config in configs]
    if benchmarks is None:
        benchmarks = list(INTEGER_BENCHMARKS) + list(FP_BENCHMARKS)

    def progress(benchmark: str, config_name: str,
                 result: RunResult) -> None:
        if print_table:
            print(f"  {benchmark:>9s} / {config_name:<14s} "
                  f"IPC {result.ipc:6.3f}", flush=True)

    results = run_matrix(configs, benchmarks, measure=measure,
                         warmup=warmup, seed=seed,
                         progress=progress if print_table else None,
                         workers=workers)
    report = Figure4Report(results=results,
                           violations=check_relations(results))
    if print_table:
        print("\nFigure 4 - IPC per benchmark and configuration")
        print(format_ipc_table(results, names))
        if report.ok:
            print("\nAll Figure 4 relations hold (WS >= base - "
                  f"{WS_MARGIN:.0%}, WSRS-RC >= base - {RC_MARGIN:.0%}, "
                  "FP window effect present).")
        else:
            print("\nRELATION VIOLATIONS:")
            for violation in report.violations:
                print(f"  {violation}")
    return report
