"""Core-loop profiling instrument (``BENCH_core.json``).

Where :mod:`repro.experiments.throughput` measures the *sweep engine*
(cells/min across a process pool), this module measures the *core
simulation loop* itself: one cell per section-5 configuration, run three
times on the same pre-materialised trace - reference per-cycle stepper,
event-horizon fast path, and the config-specialized stepper
(:mod:`repro.core.specialize`) - and cross-checked for bit-identical
statistics.  The record keeps the speedups tracked artifacts instead of
claims:

* **sim-KIPS per gear** - thousands of simulated instructions retired
  per second of wall-clock, for each of the three gears;
* **speedup** - event-horizon/reference and specialized/reference
  ratios, plus how often the horizon fires and what it saves;
* **identical** - full ``SimulationStats`` summary plus the per-cluster
  histograms compared across all three gears (any divergence is a bug,
  and the CLI exits non-zero);
* **stage breakdown** - cProfile over one event-horizon run, split into
  the pipeline stages (commit/issue/rename/horizon, with the
  scheduler's select and wake peeled out of issue as their own stages)
  plus the hottest individual functions (the specialized gear is one
  generated frame, so stage attribution only exists for the generic
  gears).

The default trace is **mcf** on every configuration: it is the suite's
most stall-dominated workload (mispredict rate within noise of gcc's
top rate, plus pointer-chase memory misses), i.e. the cell where dead
cycles - and therefore the event horizon - matter most.

``python -m repro profile [--quick] [--out PATH]`` writes the JSON
record; the CI perf-smoke job archives it and fails on divergence or on
a specialized/reference speedup below its floor (the remaining speed
numbers are informational).
"""

from __future__ import annotations

import cProfile
import json
import pstats
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig, figure4_configs
from repro.core.processor import Processor
from repro.core.stats import SimulationStats
from repro.trace.cache import default_cache

#: Schema version of the JSON record.
SCHEMA = 1

DEFAULT_BENCHMARK = "mcf"
DEFAULT_MEASURE = 20_000
DEFAULT_WARMUP = 20_000
QUICK_MEASURE = 4_000
QUICK_WARMUP = 4_000
DEFAULT_OUT = "BENCH_core.json"

#: Instructions generated beyond warmup+measure so the pipeline drains
#: without exhausting the trace early (mirrors the runner's slack).
TRACE_SLACK = 8_192

#: Pipeline-stage attribution for the cProfile breakdown: method name ->
#: (stage label, filename fragment).  ``_commit``/``_issue``/
#: ``_rename_and_dispatch``/``_try_jump`` are the four top-level phases
#: of the main loop; the scheduler's ``select`` and ``wake`` are nested
#: inside ``_issue`` (and ``wake`` inside ``select``), so their
#: cumulative times are *subtracted out* of their callers below -
#: scheduler work reports as its own stage and the stages partition a
#: run again.
_STAGE_METHODS = {
    "_commit": ("commit", "processor"),
    "_issue": ("issue", "processor"),
    "_rename_and_dispatch": ("rename", "processor"),
    "_try_jump": ("horizon", "processor"),
    "select": ("select", "issue_queue"),
    "wake": ("wake", "issue_queue"),
}

#: Containment chain for the subtraction: stage -> the stage nested
#: directly inside it.
_NESTED_STAGE = {"issue": "select", "select": "wake"}


def _fingerprint(stats: SimulationStats) -> Tuple:
    """Everything the golden-equivalence check compares across gears."""
    return (stats.summary(),
            list(stats.cluster_allocated),
            list(stats.cluster_issued))


def _timed_run(config: MachineConfig, trace: Sequence,
               measure: int, warmup: int,
               gear: str) -> Tuple[Processor, SimulationStats, float]:
    # check_invariants off, matching sweep cells (RunSpec's default) -
    # and required for the specialized gear to engage on WSRS
    # configurations (the paranoid per-uop checks are an entry guard).
    processor = Processor(config, iter(trace), gear=gear,
                          check_invariants=False)
    start = time.perf_counter()
    stats = processor.run(measure=measure, warmup=warmup)
    return processor, stats, time.perf_counter() - start


def _stage_breakdown(config: MachineConfig, trace: Sequence,
                     measure: int, warmup: int,
                     top: int = 12) -> Dict:
    """cProfile one event-horizon run and split it into pipeline stages."""
    processor = Processor(config, iter(trace), fast_path=True)
    profiler = cProfile.Profile()
    profiler.enable()
    processor.run(measure=measure, warmup=warmup)
    profiler.disable()
    profile_stats = pstats.Stats(profiler)
    total = profile_stats.total_tt
    stages: Dict[str, float] = {}
    hottest: List[Dict] = []
    entries = []
    for (filename, _line, name), (_cc, ncalls, tottime, cumtime,
                                  _callers) in profile_stats.stats.items():
        attribution = _STAGE_METHODS.get(name)
        if attribution is not None and attribution[1] in filename:
            stages[attribution[0]] = cumtime
        entries.append((tottime, ncalls, cumtime, name, filename))
    # Peel nested stages out of their callers so the labels are
    # mutually exclusive (issue excludes select, select excludes wake).
    for outer, inner in _NESTED_STAGE.items():
        if outer in stages and inner in stages:
            stages[outer] -= stages[inner]
    stages = {name: round(seconds, 4) for name, seconds in stages.items()}
    entries.sort(reverse=True)
    for tottime, ncalls, cumtime, name, filename in entries[:top]:
        hottest.append({
            "function": name,
            "calls": ncalls,
            "tottime_s": round(tottime, 4),
            "cumtime_s": round(cumtime, 4),
        })
    return {
        "total_s": round(total, 4),
        "stages_cum_s": stages,
        "hottest": hottest,
    }


def run(
    benchmark: str = DEFAULT_BENCHMARK,
    configs: Optional[Sequence[MachineConfig]] = None,
    measure: Optional[int] = None,
    warmup: Optional[int] = None,
    seed: int = 1,
    quick: bool = False,
    out: Optional[str] = DEFAULT_OUT,
    print_summary: bool = True,
) -> Dict:
    """Profile the core loop and (optionally) write ``BENCH_core.json``.

    Returns the record as a dictionary; ``record["identical"]`` is the
    golden-equivalence verdict over every configuration.  ``out=None``
    skips the file.
    """
    if measure is None:
        measure = QUICK_MEASURE if quick else DEFAULT_MEASURE
    if warmup is None:
        warmup = QUICK_WARMUP if quick else DEFAULT_WARMUP
    configs = list(configs if configs is not None else figure4_configs())

    # Pre-materialise the trace so sim-KIPS measures the core, not the
    # workload generator (the cache returns the same immutable tuple for
    # both gears, so the input streams are trivially identical).
    trace = default_cache().get(benchmark, measure + warmup + TRACE_SLACK,
                                seed=seed)

    cells: List[Dict] = []
    all_identical = True
    for config in configs:
        _, ref_stats, ref_seconds = _timed_run(
            config, trace, measure, warmup, gear="reference")
        fast_proc, fast_stats, fast_seconds = _timed_run(
            config, trace, measure, warmup, gear="horizon")
        spec_proc, spec_stats, spec_seconds = _timed_run(
            config, trace, measure, warmup, gear="specialized")
        ref_print = _fingerprint(ref_stats)
        identical = (ref_print == _fingerprint(fast_stats)
                     and ref_print == _fingerprint(spec_stats))
        all_identical &= identical
        simulated = fast_stats.committed + warmup
        cells.append({
            "config": config.name,
            "identical": identical,
            "ipc": round(fast_stats.ipc, 4),
            "cycles": fast_stats.cycles,
            "reference_s": round(ref_seconds, 3),
            "event_horizon_s": round(fast_seconds, 3),
            "specialized_s": round(spec_seconds, 3),
            "reference_kips": round(simulated / ref_seconds / 1000.0, 1)
            if ref_seconds else 0.0,
            "event_horizon_kips": round(simulated / fast_seconds / 1000.0, 1)
            if fast_seconds else 0.0,
            "specialized_kips": round(simulated / spec_seconds / 1000.0, 1)
            if spec_seconds else 0.0,
            "speedup": round(ref_seconds / fast_seconds, 2)
            if fast_seconds else 0.0,
            "specialized_speedup": round(ref_seconds / spec_seconds, 2)
            if spec_seconds else 0.0,
            "specialized_gear": spec_proc.gear,
            "despecializations": spec_proc.despecializations,
            "horizon_jumps": fast_proc.horizon_jumps,
            "cycles_skipped": fast_proc.horizon_cycles_skipped,
        })

    breakdown = _stage_breakdown(configs[0], trace, measure, warmup)
    record = {
        "schema": SCHEMA,
        "benchmark": benchmark,
        "measure": measure,
        "warmup": warmup,
        "seed": seed,
        "quick": quick,
        "identical": all_identical,
        "cells": cells,
        "stage_breakdown": breakdown,
    }
    if out:
        with open(out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if print_summary:
        print(format_record(record, out))
    return record


def format_record(record: Dict, out: Optional[str] = None) -> str:
    lines: List[str] = [
        f"core profile: {record['benchmark']} "
        f"({record['measure']:,} measured / {record['warmup']:,} warm-up"
        f"{', quick' if record['quick'] else ''})",
        f"  {'config':<16s}{'ref KIPS':>10s}{'horizon':>9s}"
        f"{'special':>9s}{'h-speed':>9s}{'s-speed':>9s}  identical",
    ]
    for cell in record["cells"]:
        lines.append(
            f"  {cell['config']:<16s}{cell['reference_kips']:>10.1f}"
            f"{cell['event_horizon_kips']:>9.1f}"
            f"{cell['specialized_kips']:>9.1f}"
            f"{cell['speedup']:>8.2f}x"
            f"{cell['specialized_speedup']:>8.2f}x  "
            f"{'yes' if cell['identical'] else 'NO - DIVERGED'}")
    stages = record["stage_breakdown"]["stages_cum_s"]
    if stages:
        split = ", ".join(f"{name} {seconds:.2f}s"
                          for name, seconds in sorted(stages.items()))
        lines.append(f"  stage cumtime: {split}")
    if not record["identical"]:
        lines.append("  GOLDEN EQUIVALENCE FAILED: event-horizon statistics "
                     "diverge from the reference stepper")
    if out:
        lines.append(f"  wrote {out}")
    return "\n".join(lines)
