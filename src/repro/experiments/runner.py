"""Shared experiment plumbing: specs, execution, and the parallel engine.

Experiments bind a machine configuration to a benchmark trace and run the
simulator for a warm-up phase (caches + branch predictor) followed by a
measured slice, mirroring the methodology of section 5.3 (fast-forward,
warm, then measure).  The paper measures 10 M-instruction slices; a pure
Python simulator is ~10^2 slower than the authors' C simulator, so the
default slice here is 100 K instructions with a 120 K warm-up - the
``scale`` knob multiplies both for higher-fidelity runs.

Experiment matrices are embarrassingly parallel - every (benchmark,
configuration) cell is an independent simulation on a byte-identical
input stream - so :func:`run_matrix` and :func:`execute_many` fan cells
out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* ``workers=None`` uses every core (``os.cpu_count()``); ``workers=1``
  is a plain in-process loop kept as the determinism-debugging escape
  hatch (one process, one breakpoint, strictly sequential cells);
* before spawning workers, the parent pre-warms the process-wide trace
  cache (:mod:`repro.trace.cache`) with every distinct workload of the
  matrix, so forked workers inherit the materialised traces through
  copy-on-write pages instead of regenerating them;
* ``progress(...)`` callbacks stream in the parent as futures complete,
  in completion order; results are reassembled in spec order, so the
  returned structure - and every statistic in it - is bit-identical to
  the serial path's (the simulator is deterministic and each cell's RNG
  state is derived only from its own spec).

Everything crossing the pool boundary (:class:`RunSpec`,
:class:`RunResult`, :class:`~repro.core.stats.SimulationStats`) is plain
picklable data.
"""

from __future__ import annotations

import os
import signal
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, \
    Sequence, Set

from repro.config import MachineConfig
from repro.core.processor import Processor
from repro.core.stats import SimulationStats
from repro.frontend.predictors import make_predictor
from repro.trace.cache import cached_spec_trace, default_cache

#: Default measured-slice and warm-up lengths (instructions).
DEFAULT_MEASURE = 100_000
DEFAULT_WARMUP = 120_000

#: Instructions generated beyond warmup+measure so the pipeline drains
#: without exhausting the trace early.
TRACE_SLACK = 8_192


@dataclass(frozen=True)
class RunSpec:
    """One (configuration, benchmark) simulation request."""

    config: MachineConfig
    benchmark: str
    measure: int = DEFAULT_MEASURE
    warmup: int = DEFAULT_WARMUP
    seed: int = 1
    predictor: str = "2bcgskew"
    #: Per-uop read-legality assertions in the renamer.  Off by default
    #: in sweep cells - they are pure overhead there, and legality stays
    #: covered by the sanitized CI smoke; ``wsrs simulate --paranoid``
    #: turns them back on for one-off runs.
    check_invariants: bool = False
    #: Run under the cycle-level pipeline sanitizer
    #: (:mod:`repro.verify.sanitizer`).  ``False`` still honours the
    #: ``WSRS_SANITIZE`` environment switch in the worker process.
    sanitize: bool = False
    #: Use the event-horizon fast path (bit-identical statistics; see
    #: :mod:`repro.core.processor`).  ``False`` forces the reference
    #: per-cycle stepper.
    fast_path: bool = True
    #: Attach the observability layer (:mod:`repro.obs`): CPI-stack
    #: cycle accounting plus the counter/histogram registry.  The
    #: result then carries :attr:`RunResult.obs`; every statistic stays
    #: bit-identical to an unobserved run.
    observe: bool = False
    #: Explicit main-loop gear ("reference" | "horizon" | "specialized");
    #: ``None`` keeps the legacy ``fast_path`` selection between the
    #: first two.  The specialized gear falls back to the generic loop
    #: when its guards block or trip (statistics stay bit-identical).
    gear: Optional[str] = None

    @property
    def trace_length(self) -> int:
        return self.warmup + self.measure + TRACE_SLACK


@dataclass
class RunResult:
    """Simulation outcome of one run."""

    spec: RunSpec
    stats: SimulationStats
    #: Observability snapshot (plain picklable data: the CPI stack under
    #: ``obs["causes"]``, registry counters/histograms, steering mirror)
    #: when the spec asked for ``observe=True``; None otherwise.
    obs: Optional[dict] = None

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def unbalancing_degree(self) -> float:
        return self.stats.unbalancing_degree


class ExperimentInterrupted(RuntimeError):
    """A matrix run was stopped early (Ctrl-C or SIGTERM).

    Raised by :func:`execute_many` after the worker pool has been torn
    down cleanly: queued cells cancelled, running workers reaped, no
    orphaned processes.  :attr:`results` carries every cell that
    completed before the interrupt, in spec order, so callers can flush
    partial tables instead of losing the whole sweep.
    """

    def __init__(self, results: List["RunResult"]) -> None:
        super().__init__(
            f"experiment interrupted; {len(results)} cell(s) completed")
        self.results = results


def shutdown_pool(pool: ProcessPoolExecutor,
                  cancel_pending: bool = True) -> None:
    """Orderly pool teardown: drop queued work, reap every worker.

    ``cancel_pending`` cancels cells that have not started; cells already
    running complete (a simulation cannot be interrupted mid-cycle) and
    their processes are joined before this returns.  Shared with the
    service scheduler's drain path (:mod:`repro.service.scheduler`).
    """
    pool.shutdown(wait=True, cancel_futures=cancel_pending)


@contextmanager
def sigterm_interrupts() -> Iterator[None]:
    """Deliver SIGTERM as :class:`KeyboardInterrupt` while active.

    Lets one cleanup path (the ``except KeyboardInterrupt`` around the
    pool loop) serve both Ctrl-C and a supervisor's TERM.  A no-op off
    the main thread, where CPython forbids installing signal handlers -
    there the embedding host owns signal routing.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def execute(spec: RunSpec) -> RunResult:
    """Run one simulation to completion (the pool worker entry point)."""
    trace = cached_spec_trace(spec.benchmark, spec.trace_length,
                              seed=spec.seed)
    processor = Processor(spec.config, trace,
                          predictor=make_predictor(spec.predictor),
                          check_invariants=spec.check_invariants,
                          sanitize=True if spec.sanitize else None,
                          fast_path=spec.fast_path,
                          observe=spec.observe,
                          gear=spec.gear)
    stats = processor.run(measure=spec.measure, warmup=spec.warmup)
    obs = processor.obs.snapshot() if processor.obs is not None else None
    return RunResult(spec=spec, stats=stats, obs=obs)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers=`` knob to a concrete positive count."""
    if workers is None:
        workers = os.cpu_count() or 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def warm_trace_cache(specs: Sequence[RunSpec]) -> int:
    """Materialise every distinct workload of ``specs`` into the cache.

    Returns the number of distinct workloads.  Called by the parallel
    engine before forking so workers share the parent's traces; also
    useful on its own to pay all generation cost up front.
    """
    seen: Set[tuple] = set()
    cache = default_cache()
    for spec in specs:
        key = (spec.benchmark, spec.trace_length, spec.seed)
        if key not in seen:
            seen.add(key)
            cache.get(*key)
    return len(seen)


def execute_many(
    specs: Sequence[RunSpec],
    workers: Optional[int] = None,
    progress: Optional[Callable[[RunResult], None]] = None,
) -> List[RunResult]:
    """Run every spec, fanning out over a process pool when ``workers>1``.

    Results come back in ``specs`` order regardless of completion order.
    ``progress``, when given, is called as ``progress(result)`` once per
    finished cell - in spec order when serial, in completion order when
    parallel.
    """
    workers = resolve_workers(workers)
    if workers == 1 or len(specs) <= 1:
        results = []
        for spec in specs:
            result = execute(spec)
            results.append(result)
            if progress is not None:
                progress(result)
        return results

    slots: List[Optional[RunResult]] = [None] * len(specs)
    pool: Optional[ProcessPoolExecutor] = None
    try:
        # The interrupt window opens before trace warming: a TERM during
        # the (potentially long) generation phase must also exit through
        # ExperimentInterrupted rather than the default kill.
        with sigterm_interrupts():
            # Generate each distinct trace once, pre-fork: forked
            # workers then read the parent's materialised traces via
            # copy-on-write pages.
            warm_trace_cache(specs)
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(specs)))
            future_index = {pool.submit(execute, spec): index
                            for index, spec in enumerate(specs)}
            pending = set(future_index)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    result = future.result()
                    slots[future_index[future]] = result
                    if progress is not None:
                        progress(result)
    except (KeyboardInterrupt, SystemExit) as exc:
        # Flush what finished; the finally below reaps the workers, so
        # an interrupted sweep leaves neither orphans nor torn results.
        partial = [result for result in slots if result is not None]
        raise ExperimentInterrupted(partial) from exc
    finally:
        if pool is not None:
            shutdown_pool(pool)
    return [result for result in slots if result is not None]


def matrix_specs(
    configs: Sequence[MachineConfig],
    benchmarks: Iterable[str],
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 1,
) -> List[RunSpec]:
    """The spec list of a full (benchmark x config) matrix, row-major."""
    return [
        RunSpec(config=config, benchmark=benchmark, measure=measure,
                warmup=warmup, seed=seed)
        for benchmark in benchmarks
        for config in configs
    ]


def run_matrix(
    configs: Sequence[MachineConfig],
    benchmarks: Iterable[str],
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 1,
    progress: Optional[Callable] = None,
    workers: Optional[int] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Run every (benchmark, config) pair.

    Returns ``results[benchmark][config_name]``.  ``progress``, when
    given, is called as ``progress(benchmark, config_name, result)`` after
    each run (used by the CLI to stream rows).  ``workers`` selects the
    execution engine: ``None`` (the default) uses every core, >1 that
    many pool workers, and 1 the strictly serial in-process path (the
    determinism-debugging escape hatch) - per-cell results are
    bit-identical either way, only the ``progress`` callback order
    differs.
    """
    benchmarks = list(benchmarks)
    specs = matrix_specs(configs, benchmarks, measure=measure,
                         warmup=warmup, seed=seed)

    cell_progress = None
    if progress is not None:
        def cell_progress(result: RunResult) -> None:
            progress(result.spec.benchmark, result.spec.config.name, result)

    cells = execute_many(specs, workers=workers, progress=cell_progress)
    results: Dict[str, Dict[str, RunResult]] = {
        benchmark: {} for benchmark in benchmarks}
    for result in cells:
        results[result.spec.benchmark][result.spec.config.name] = result
    return results


def format_ipc_table(results: Dict[str, Dict[str, RunResult]],
                     config_names: List[str]) -> str:
    """Figure 4-style text table: one row per benchmark, IPC per config."""
    width = max((len(n) for n in results), default=9) + 1
    header = " " * width + "".join(f"{name:>16s}" for name in config_names)
    lines = [header]
    for benchmark, row in results.items():
        cells = "".join(f"{row[name].ipc:>16.3f}" for name in config_names)
        lines.append(f"{benchmark:<{width}s}{cells}")
    return "\n".join(lines)
