"""Shared experiment plumbing.

Experiments bind a machine configuration to a benchmark trace and run the
simulator for a warm-up phase (caches + branch predictor) followed by a
measured slice, mirroring the methodology of section 5.3 (fast-forward,
warm, then measure).  The paper measures 10 M-instruction slices; a pure
Python simulator is ~10^2 slower than the authors' C simulator, so the
default slice here is 100 K instructions with a 120 K warm-up - the
``scale`` knob multiplies both for higher-fidelity runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.config import MachineConfig
from repro.core.processor import Processor
from repro.core.stats import SimulationStats
from repro.trace.profiles import spec_trace

#: Default measured-slice and warm-up lengths (instructions).
DEFAULT_MEASURE = 100_000
DEFAULT_WARMUP = 120_000


@dataclass(frozen=True)
class RunSpec:
    """One (configuration, benchmark) simulation request."""

    config: MachineConfig
    benchmark: str
    measure: int = DEFAULT_MEASURE
    warmup: int = DEFAULT_WARMUP
    seed: int = 1


@dataclass
class RunResult:
    """Simulation outcome of one run."""

    spec: RunSpec
    stats: SimulationStats

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def unbalancing_degree(self) -> float:
        return self.stats.unbalancing_degree


def execute(spec: RunSpec) -> RunResult:
    """Run one simulation to completion."""
    trace = spec_trace(spec.benchmark, spec.warmup + spec.measure + 8_192,
                       seed=spec.seed)
    processor = Processor(spec.config, trace)
    stats = processor.run(measure=spec.measure, warmup=spec.warmup)
    return RunResult(spec=spec, stats=stats)


def run_matrix(
    configs: Sequence[MachineConfig],
    benchmarks: Iterable[str],
    measure: int = DEFAULT_MEASURE,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 1,
    progress: Optional[object] = None,
) -> Dict[str, Dict[str, RunResult]]:
    """Run every (benchmark, config) pair.

    Returns ``results[benchmark][config_name]``.  ``progress``, when
    given, is called as ``progress(benchmark, config_name, result)`` after
    each run (used by the CLI to stream rows).
    """
    results: Dict[str, Dict[str, RunResult]] = {}
    for benchmark in benchmarks:
        row: Dict[str, RunResult] = {}
        for config in configs:
            spec = RunSpec(config=config, benchmark=benchmark,
                           measure=measure, warmup=warmup, seed=seed)
            result = execute(spec)
            row[config.name] = result
            if progress is not None:
                progress(benchmark, config.name, result)
        results[benchmark] = row
    return results


def format_ipc_table(results: Dict[str, Dict[str, RunResult]],
                     config_names: List[str]) -> str:
    """Figure 4-style text table: one row per benchmark, IPC per config."""
    width = max((len(n) for n in results), default=9) + 1
    header = " " * width + "".join(f"{name:>16s}" for name in config_names)
    lines = [header]
    for benchmark, row in results.items():
        cells = "".join(f"{row[name].ipc:>16.3f}" for name in config_names)
        lines.append(f"{benchmark:<{width}s}{cells}")
    return "\n".join(lines)
