"""Experiment driver for Figure 5 (workload unbalancing degrees).

Replays the WSRS runs of Figure 4 and reports, per benchmark, the
unbalancing degree (section 5.4.2's 128-instruction-group metric) of the
RC and RM allocation policies, then verifies the shape of the published
figure:

* round-robin allocation on a conventional machine is perfectly
  balanced (degree 0);
* the RM policy, exploiting fewer degrees of freedom than RC, shows the
  highest unbalancing in most cases;
* floating-point benchmarks tend to be more unbalanced than integer
  ones; the high-IPC FP codes (wupwise, facerec) approach 100 %, while
  the high-IPC integer codes (gzip, crafty) sit around 80 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.config import baseline_rr_256, wsrs_rc, wsrs_rm
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    RunResult,
    run_matrix,
)
from repro.trace.profiles import FP_BENCHMARKS, INTEGER_BENCHMARKS


@dataclass
class Figure5Report:
    """Unbalancing degrees plus shape-check verdicts."""

    results: Dict[str, Dict[str, RunResult]]
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def degree(self, benchmark: str, config: str) -> float:
        return self.results[benchmark][config].unbalancing_degree


def check_relations(results: Dict[str, Dict[str, RunResult]]) -> List[str]:
    violations: List[str] = []
    rm_higher = 0
    comparable = 0
    for benchmark, row in results.items():
        if row["RR 256"].unbalancing_degree != 0.0:
            violations.append(
                f"{benchmark}: round-robin must be perfectly balanced, "
                f"got {row['RR 256'].unbalancing_degree:.1f}%")
        rc = row["WSRS RC S 512"].unbalancing_degree
        rm = row["WSRS RM S 512"].unbalancing_degree
        comparable += 1
        if rm >= rc:
            rm_higher += 1
        if not 40.0 <= rc <= 100.0:
            violations.append(
                f"{benchmark}: RC unbalancing {rc:.1f}% outside the "
                f"plausible Figure 5 band")
    if comparable and rm_higher < comparable / 2:
        violations.append(
            "RM should exhibit the highest unbalancing degree in most "
            f"cases (higher in only {rm_higher}/{comparable})")
    fp_mean = _mean([results[b]["WSRS RM S 512"].unbalancing_degree
                     for b in FP_BENCHMARKS if b in results])
    int_mean = _mean([results[b]["WSRS RM S 512"].unbalancing_degree
                      for b in INTEGER_BENCHMARKS if b in results])
    if fp_mean and int_mean and fp_mean < int_mean:
        violations.append(
            f"FP benchmarks should be more unbalanced than integer ones "
            f"(FP mean {fp_mean:.1f}% vs int mean {int_mean:.1f}%)")
    return violations


def _mean(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def run(measure: int = DEFAULT_MEASURE, warmup: int = DEFAULT_WARMUP,
        benchmarks: List[str] | None = None, seed: int = 1,
        print_table: bool = True,
        workers: int | None = None) -> Figure5Report:
    """Regenerate Figure 5.

    ``workers`` is forwarded to :func:`repro.experiments.runner.run_matrix`
    (``None``: all cores; 1: the serial determinism path).
    """
    configs = (baseline_rr_256(), wsrs_rc(512), wsrs_rm(512))
    if benchmarks is None:
        benchmarks = list(INTEGER_BENCHMARKS) + list(FP_BENCHMARKS)
    results = run_matrix(configs, benchmarks, measure=measure,
                         warmup=warmup, seed=seed, workers=workers)
    report = Figure5Report(results=results,
                           violations=check_relations(results))
    if print_table:
        print("Figure 5 - unbalancing degree (%) per benchmark")
        print(f"{'benchmark':<10s}{'WSRS RC':>10s}{'WSRS RM':>10s}")
        for benchmark in benchmarks:
            row = results[benchmark]
            print(f"{benchmark:<10s}"
                  f"{row['WSRS RC S 512'].unbalancing_degree:>10.1f}"
                  f"{row['WSRS RM S 512'].unbalancing_degree:>10.1f}")
        if report.ok:
            print("\nAll Figure 5 relations hold (RR balanced, RM >= RC "
                  "in most cases, FP more unbalanced than integer).")
        else:
            print("\nRELATION VIOLATIONS:")
            for violation in report.violations:
                print(f"  {violation}")
    return report
