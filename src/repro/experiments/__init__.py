"""Experiment drivers regenerating the paper's tables and figures."""

from repro.experiments import (
    ablations,
    figure4,
    figure5,
    report,
    sensitivity,
    table1,
    throughput,
)

__all__ = ["ablations", "figure4", "figure5", "report", "sensitivity",
           "table1", "throughput"]
