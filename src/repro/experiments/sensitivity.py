"""Sensitivity studies around the section 5 operating point.

Four sweeps probing how robust the paper's conclusion (WSRS ~ equal IPC
at a fraction of the complexity) is to the modelling assumptions:

* :func:`penalty_sweep` - minimum misprediction penalty from 10 to 25
  cycles (the paper fixes 17/16/18; deeper pipelines raise all of them);
* :func:`memory_sweep` - main-memory latency from 40 to 160 cycles;
* :func:`width_sweep` - the conventional 2-cluster 4-way reference
  (noWS-2) against the 8-way machines: how much performance the wider
  machine buys, to be weighed against Table 1's complexity columns;
* :func:`predictor_sweep` - predictor quality (always-taken, bimodal,
  gshare, 2Bc-gskew): mispredict-penalty differences between the
  configurations matter more when prediction is worse.

Each sweep builds a flat :class:`~repro.experiments.runner.RunSpec` list
and hands it to :func:`~repro.experiments.runner.execute_many`, so the
cells run through the shared parallel engine (``workers=`` knob, trace
cache) like every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.config import (
    CacheConfig,
    MachineConfig,
    MemoryConfig,
    baseline_rr_256,
    two_cluster_4way,
    wsrs_rc,
)
from repro.experiments.runner import RunSpec, execute_many

DEFAULT_BENCHMARK = "gzip"
DEFAULT_MEASURE = 40_000
DEFAULT_WARMUP = 50_000


@dataclass
class SweepResult:
    name: str
    #: results[variant_label][config_name] -> IPC
    ipc: Dict[str, Dict[str, float]]


def _run_cells(name: str,
               cells: Sequence[Tuple[str, str, MachineConfig, str]],
               benchmark: str, measure: int, warmup: int,
               workers: int | None) -> SweepResult:
    """Execute (variant, config_label, config, predictor) cells."""
    specs = [RunSpec(config=config, benchmark=benchmark, measure=measure,
                     warmup=warmup, predictor=predictor)
             for _, _, config, predictor in cells]
    results = execute_many(specs, workers=workers)
    ipc: Dict[str, Dict[str, float]] = {}
    for (variant, label, _, _), result in zip(cells, results):
        ipc.setdefault(variant, {})[label] = result.ipc
    return SweepResult(name, ipc)


def penalty_sweep(benchmark: str = DEFAULT_BENCHMARK,
                  penalties: Sequence[int] = (10, 14, 17, 21, 25),
                  measure: int = DEFAULT_MEASURE,
                  warmup: int = DEFAULT_WARMUP,
                  workers: int | None = None) -> SweepResult:
    """Base and WSRS across misprediction penalties.

    WSRS carries a constant +1-cycle handicap (renaming implementation 2:
    three extra stages before rename, two saved on register read), so the
    *gap* should stay roughly constant as the penalty scales.
    """
    cells = []
    for penalty in penalties:
        variant = f"penalty-{penalty}"
        cells.append((variant, "base",
                      baseline_rr_256(mispredict_penalty=penalty),
                      "2bcgskew"))
        cells.append((variant, "wsrs",
                      wsrs_rc(512, mispredict_penalty=penalty + 1),
                      "2bcgskew"))
    return _run_cells("penalty", cells, benchmark, measure, warmup,
                      workers)


def memory_sweep(benchmark: str = DEFAULT_BENCHMARK,
                 miss_penalties: Sequence[int] = (40, 80, 160),
                 measure: int = DEFAULT_MEASURE,
                 warmup: int = DEFAULT_WARMUP,
                 workers: int | None = None) -> SweepResult:
    """Base and WSRS across main-memory latencies."""
    cells = []
    for penalty in miss_penalties:
        memory = MemoryConfig(
            l2=CacheConfig(size_bytes=512 * 1024, line_bytes=64,
                           associativity=8, hit_latency=12,
                           miss_penalty=penalty))
        variant = f"mem-{penalty}"
        cells.append((variant, "base", baseline_rr_256(memory=memory),
                      "2bcgskew"))
        cells.append((variant, "wsrs", wsrs_rc(512, memory=memory),
                      "2bcgskew"))
    return _run_cells("memory", cells, benchmark, measure, warmup, workers)


def width_sweep(benchmark: str = DEFAULT_BENCHMARK,
                measure: int = DEFAULT_MEASURE,
                warmup: int = DEFAULT_WARMUP,
                workers: int | None = None) -> SweepResult:
    """The complexity-effectiveness triangle of section 4.2.2.

    noWS-2 (4-way) vs the conventional 8-way vs the 8-way WSRS machine:
    WSRS aims for 8-way performance at close-to-4-way complexity.
    """
    cells = [
        ("width", "noWS-2 (4-way)", two_cluster_4way(), "2bcgskew"),
        ("width", "conventional 8-way", baseline_rr_256(), "2bcgskew"),
        ("width", "WSRS 8-way", wsrs_rc(512), "2bcgskew"),
    ]
    return _run_cells("width", cells, benchmark, measure, warmup, workers)


def predictor_sweep(benchmark: str = DEFAULT_BENCHMARK,
                    kinds: Sequence[str] = ("always-taken", "bimodal",
                                            "gshare", "2bcgskew"),
                    measure: int = DEFAULT_MEASURE,
                    warmup: int = DEFAULT_WARMUP,
                    workers: int | None = None) -> SweepResult:
    """Base and WSRS across predictor quality."""
    cells = []
    for kind in kinds:
        cells.append((kind, "base", baseline_rr_256(), kind))
        cells.append((kind, "wsrs", wsrs_rc(512), kind))
    return _run_cells("predictor", cells, benchmark, measure, warmup,
                      workers)


def format_sweep(result: SweepResult) -> str:
    lines = [f"Sensitivity sweep: {result.name}"]
    for variant, row in result.ipc.items():
        cells = "  ".join(f"{config}={value:.3f}"
                          for config, value in row.items())
        lines.append(f"  {variant:<22s} {cells}")
    return "\n".join(lines)


def run_all(benchmark: str = DEFAULT_BENCHMARK,
            measure: int = DEFAULT_MEASURE,
            warmup: int = DEFAULT_WARMUP,
            print_tables: bool = True,
            workers: int | None = None) -> List[SweepResult]:
    results = [
        penalty_sweep(benchmark, measure=measure, warmup=warmup,
                      workers=workers),
        memory_sweep(benchmark, measure=measure, warmup=warmup,
                     workers=workers),
        width_sweep(benchmark, measure=measure, warmup=warmup,
                    workers=workers),
        predictor_sweep(benchmark, measure=measure, warmup=warmup,
                        workers=workers),
    ]
    if print_tables:
        for result in results:
            print(format_sweep(result))
            print()
    return results
