"""Sensitivity studies around the section 5 operating point.

Four sweeps probing how robust the paper's conclusion (WSRS ~ equal IPC
at a fraction of the complexity) is to the modelling assumptions:

* :func:`penalty_sweep` - minimum misprediction penalty from 10 to 25
  cycles (the paper fixes 17/16/18; deeper pipelines raise all of them);
* :func:`memory_sweep` - main-memory latency from 40 to 160 cycles;
* :func:`width_sweep` - the conventional 2-cluster 4-way reference
  (noWS-2) against the 8-way machines: how much performance the wider
  machine buys, to be weighed against Table 1's complexity columns;
* :func:`predictor_sweep` - predictor quality (always-taken, bimodal,
  gshare, 2Bc-gskew): mispredict-penalty differences between the
  configurations matter more when prediction is worse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.config import (
    CacheConfig,
    MachineConfig,
    MemoryConfig,
    baseline_rr_256,
    two_cluster_4way,
    wsrs_rc,
)
from repro.core.processor import Processor
from repro.frontend.predictors import make_predictor
from repro.trace.profiles import spec_trace

DEFAULT_BENCHMARK = "gzip"
DEFAULT_MEASURE = 40_000
DEFAULT_WARMUP = 50_000


@dataclass
class SweepResult:
    name: str
    #: results[variant_label][config_name] -> IPC
    ipc: Dict[str, Dict[str, float]]


def _run(config: MachineConfig, benchmark: str, measure: int,
         warmup: int, predictor_kind: str = "2bcgskew") -> float:
    trace = spec_trace(benchmark, measure + warmup + 8_192)
    processor = Processor(config, trace,
                          predictor=make_predictor(predictor_kind))
    return processor.run(measure=measure, warmup=warmup).ipc


def penalty_sweep(benchmark: str = DEFAULT_BENCHMARK,
                  penalties: Sequence[int] = (10, 14, 17, 21, 25),
                  measure: int = DEFAULT_MEASURE,
                  warmup: int = DEFAULT_WARMUP) -> SweepResult:
    """Base and WSRS across misprediction penalties.

    WSRS carries a constant +1-cycle handicap (renaming implementation 2:
    three extra stages before rename, two saved on register read), so the
    *gap* should stay roughly constant as the penalty scales.
    """
    ipc: Dict[str, Dict[str, float]] = {}
    for penalty in penalties:
        ipc[f"penalty-{penalty}"] = {
            "base": _run(baseline_rr_256(mispredict_penalty=penalty),
                         benchmark, measure, warmup),
            "wsrs": _run(wsrs_rc(512, mispredict_penalty=penalty + 1),
                         benchmark, measure, warmup),
        }
    return SweepResult("penalty", ipc)


def memory_sweep(benchmark: str = DEFAULT_BENCHMARK,
                 miss_penalties: Sequence[int] = (40, 80, 160),
                 measure: int = DEFAULT_MEASURE,
                 warmup: int = DEFAULT_WARMUP) -> SweepResult:
    """Base and WSRS across main-memory latencies."""
    ipc: Dict[str, Dict[str, float]] = {}
    for penalty in miss_penalties:
        memory = MemoryConfig(
            l2=CacheConfig(size_bytes=512 * 1024, line_bytes=64,
                           associativity=8, hit_latency=12,
                           miss_penalty=penalty))
        ipc[f"mem-{penalty}"] = {
            "base": _run(baseline_rr_256(memory=memory), benchmark,
                         measure, warmup),
            "wsrs": _run(wsrs_rc(512, memory=memory), benchmark,
                         measure, warmup),
        }
    return SweepResult("memory", ipc)


def width_sweep(benchmark: str = DEFAULT_BENCHMARK,
                measure: int = DEFAULT_MEASURE,
                warmup: int = DEFAULT_WARMUP) -> SweepResult:
    """The complexity-effectiveness triangle of section 4.2.2.

    noWS-2 (4-way) vs the conventional 8-way vs the 8-way WSRS machine:
    WSRS aims for 8-way performance at close-to-4-way complexity.
    """
    ipc = {"width": {
        "noWS-2 (4-way)": _run(two_cluster_4way(), benchmark, measure,
                               warmup),
        "conventional 8-way": _run(baseline_rr_256(), benchmark,
                                   measure, warmup),
        "WSRS 8-way": _run(wsrs_rc(512), benchmark, measure, warmup),
    }}
    return SweepResult("width", ipc)


def predictor_sweep(benchmark: str = DEFAULT_BENCHMARK,
                    kinds: Sequence[str] = ("always-taken", "bimodal",
                                            "gshare", "2bcgskew"),
                    measure: int = DEFAULT_MEASURE,
                    warmup: int = DEFAULT_WARMUP) -> SweepResult:
    """Base and WSRS across predictor quality."""
    ipc: Dict[str, Dict[str, float]] = {}
    for kind in kinds:
        ipc[kind] = {
            "base": _run(baseline_rr_256(), benchmark, measure, warmup,
                         predictor_kind=kind),
            "wsrs": _run(wsrs_rc(512), benchmark, measure, warmup,
                         predictor_kind=kind),
        }
    return SweepResult("predictor", ipc)


def format_sweep(result: SweepResult) -> str:
    lines = [f"Sensitivity sweep: {result.name}"]
    for variant, row in result.ipc.items():
        cells = "  ".join(f"{config}={value:.3f}"
                          for config, value in row.items())
        lines.append(f"  {variant:<22s} {cells}")
    return "\n".join(lines)


def run_all(benchmark: str = DEFAULT_BENCHMARK,
            measure: int = DEFAULT_MEASURE,
            warmup: int = DEFAULT_WARMUP,
            print_tables: bool = True) -> List[SweepResult]:
    results = [
        penalty_sweep(benchmark, measure=measure, warmup=warmup),
        memory_sweep(benchmark, measure=measure, warmup=warmup),
        width_sweep(benchmark, measure=measure, warmup=warmup),
        predictor_sweep(benchmark, measure=measure, warmup=warmup),
    ]
    if print_tables:
        for result in results:
            print(format_sweep(result))
            print()
    return results
