"""Ablation studies around the paper's design choices.

Four ablations, indexed in DESIGN.md:

* **A1 - physical register sweep**: extends the paper's 384-vs-512
  observation ("increasing the total number of registers from 384 to 512
  has a minor impact") across 320..640 for WS and WSRS.
* **A2 - fast-forwarding policy** (section 4.3.1): intra-cluster-only
  vs adjacent-pair vs complete fast-forwarding.
* **A3 - renaming implementation**: implementation 1 (free-register
  recycling pipeline, shorter front end) vs implementation 2 (exact
  counts, longer front end) - the paper found them indistinguishable.
* **A4 - allocation-policy panel**: RM, RC and the dependence-aware
  future-work policy of section 5.4 on the WSRS machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.config import (
    FASTFORWARD_COMPLETE,
    FASTFORWARD_INTRA,
    FASTFORWARD_PAIRS,
    MachineConfig,
    baseline_rr_256,
    ws_rr,
    wsrs_rc,
    wsrs_rm,
)
from repro.experiments.runner import RunSpec, execute_many

DEFAULT_BENCHMARKS = ("gzip", "wupwise")
ABLATION_MEASURE = 60_000
ABLATION_WARMUP = 80_000


@dataclass
class AblationResult:
    """IPC (and unbalance where meaningful) for one ablation axis."""

    name: str
    #: results[benchmark][variant_label] -> IPC
    ipc: Dict[str, Dict[str, float]]
    unbalance: Dict[str, Dict[str, float]]


def _sweep(name: str, variants: Sequence[Tuple[str, MachineConfig]],
           benchmarks: Sequence[str], measure: int, warmup: int,
           workers: int | None = None) -> AblationResult:
    cells = [(benchmark, label, config)
             for benchmark in benchmarks
             for label, config in variants]
    specs = [RunSpec(config=config, benchmark=benchmark,
                     measure=measure, warmup=warmup)
             for benchmark, _, config in cells]
    results = execute_many(specs, workers=workers)
    ipc: Dict[str, Dict[str, float]] = {b: {} for b in benchmarks}
    unbalance: Dict[str, Dict[str, float]] = {b: {} for b in benchmarks}
    for (benchmark, label, _), result in zip(cells, results):
        ipc[benchmark][label] = result.ipc
        unbalance[benchmark][label] = result.unbalancing_degree
    return AblationResult(name=name, ipc=ipc, unbalance=unbalance)


def register_sweep(benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                   totals: Sequence[int] = (320, 384, 512, 640),
                   measure: int = ABLATION_MEASURE,
                   warmup: int = ABLATION_WARMUP,
                   workers: int | None = None) -> AblationResult:
    """A1: WS and WSRS IPC across physical register totals."""
    variants: List[Tuple[str, MachineConfig]] = []
    for total in totals:
        variants.append((f"WS-{total}", ws_rr(total)))
        variants.append((f"WSRS-RC-{total}", wsrs_rc(total)))
    return _sweep("register_sweep", variants, benchmarks, measure,
                  warmup, workers)


def fastforward_sweep(benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                      measure: int = ABLATION_MEASURE,
                      warmup: int = ABLATION_WARMUP,
                      workers: int | None = None) -> AblationResult:
    """A2: the three fast-forwarding policies on base and WSRS machines."""
    variants: List[Tuple[str, MachineConfig]] = []
    for policy in (FASTFORWARD_INTRA, FASTFORWARD_PAIRS,
                   FASTFORWARD_COMPLETE):
        variants.append((f"base-{policy}",
                         baseline_rr_256(fastforward=policy)))
        variants.append((f"wsrs-{policy}",
                         wsrs_rc(512, fastforward=policy)))
    return _sweep("fastforward", variants, benchmarks, measure, warmup,
                  workers)


def rename_impl_sweep(benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                      measure: int = ABLATION_MEASURE,
                      warmup: int = ABLATION_WARMUP,
                      workers: int | None = None) -> AblationResult:
    """A3: renaming implementation 1 vs 2, for WS and WSRS machines."""
    variants = [
        ("WS-impl1", ws_rr(512, rename_impl=1)),
        ("WS-impl2", ws_rr(512, rename_impl=2)),
        ("WSRS-impl1", wsrs_rc(512, rename_impl=1)),
        ("WSRS-impl2", wsrs_rc(512, rename_impl=2)),
    ]
    return _sweep("rename_impl", variants, benchmarks, measure, warmup,
                  workers)


def allocation_sweep(benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
                     measure: int = ABLATION_MEASURE,
                     warmup: int = ABLATION_WARMUP,
                     workers: int | None = None) -> AblationResult:
    """A4: allocation policies on the WSRS machine."""
    variants = [
        ("RM", wsrs_rm(512)),
        ("RC", wsrs_rc(512)),
        ("dependence-aware",
         wsrs_rc(512, allocation_policy="dependence_aware",
                 name="WSRS DEP 512")),
    ]
    return _sweep("allocation", variants, benchmarks, measure, warmup,
                  workers)


def format_result(result: AblationResult) -> str:
    """Text table for one ablation."""
    benchmarks = list(result.ipc)
    labels = list(result.ipc[benchmarks[0]]) if benchmarks else []
    width = max((len(label) for label in labels), default=8) + 2
    lines = [f"Ablation: {result.name}",
             " " * width + "".join(f"{b:>12s}" for b in benchmarks)]
    for label in labels:
        cells = "".join(f"{result.ipc[b][label]:>12.3f}"
                        for b in benchmarks)
        lines.append(f"{label:<{width}s}{cells}")
    return "\n".join(lines)


def run_all(benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
            measure: int = ABLATION_MEASURE,
            warmup: int = ABLATION_WARMUP,
            print_tables: bool = True,
            workers: int | None = None) -> List[AblationResult]:
    """Run the four ablations (``workers``: see the experiment engine)."""
    results = [
        register_sweep(benchmarks, measure=measure, warmup=warmup,
                       workers=workers),
        fastforward_sweep(benchmarks, measure=measure, warmup=warmup,
                          workers=workers),
        rename_impl_sweep(benchmarks, measure=measure, warmup=warmup,
                          workers=workers),
        allocation_sweep(benchmarks, measure=measure, warmup=warmup,
                         workers=workers),
    ]
    if print_tables:
        for result in results:
            print(format_result(result))
            print()
    return results
