"""Experiment driver for Table 1 (register-file complexity estimates).

Regenerates every row of the published table from the cost models and
checks the reproduction contract:

* structural rows (register counts, copies, ports, subfiles, bit area,
  area ratios, pipeline depths, bypass sources) must match the paper
  **exactly**;
* the calibrated analytic rows (access time, energy) must match within
  tolerances (0.02 ns / 0.15 nJ) and preserve the paper's ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cost.report import (
    PAPER_TABLE1,
    Table1Row,
    build_table1,
    format_table1,
)

#: Rows that must match the paper bit-for-bit.
EXACT_KEYS = (
    "nb of registers",
    "register copies",
    "physical subfiles",
    "pipeline cycles: 10 Ghz",
    "sources per bypass point: 10 Ghz",
    "pipeline cycles: 5 Ghz",
    "sources per bypass point: 5 Ghz",
    "reg. bit area (xw2)",
)

ACCESS_TOLERANCE_NS = 0.02
ENERGY_TOLERANCE_NJ = 0.15
AREA_RATIO_TOLERANCE = 0.05


@dataclass
class Table1Comparison:
    """Our values against the paper's, per configuration."""

    rows: List[Table1Row]
    mismatches: List[str]

    @property
    def ok(self) -> bool:
        return not self.mismatches


def compare_with_paper() -> Table1Comparison:
    """Build the table and diff it against the published values."""
    rows = build_table1()
    mismatches: List[str] = []
    for row in rows:
        ours = row.as_dict()
        name = row.organization.name
        paper: Dict[str, object] = dict(PAPER_TABLE1[name])
        paper["nb of registers"] = row.organization.num_registers
        paper["register copies"] = row.organization.copies
        paper["physical subfiles"] = row.organization.subfiles
        for key in EXACT_KEYS:
            if ours[key] != paper[key]:
                mismatches.append(
                    f"{name}: {key} = {ours[key]} (paper {paper[key]})")
        if abs(row.access_ns
               - float(paper["access time (ns)"])) > ACCESS_TOLERANCE_NS:
            mismatches.append(
                f"{name}: access time {row.access_ns:.3f} ns vs paper "
                f"{paper['access time (ns)']}")
        if abs(row.energy_nj
               - float(paper["nJ/cycle"])) > ENERGY_TOLERANCE_NJ:
            mismatches.append(
                f"{name}: energy {row.energy_nj:.3f} nJ vs paper "
                f"{paper['nJ/cycle']}")
        if abs(row.total_area_ratio
               - float(paper["total area / area noWS-2"])) \
                > AREA_RATIO_TOLERANCE:
            mismatches.append(
                f"{name}: area ratio {row.total_area_ratio:.3f} vs paper "
                f"{paper['total area / area noWS-2']}")
    return Table1Comparison(rows=rows, mismatches=mismatches)


def run(print_table: bool = True) -> Table1Comparison:
    """Regenerate Table 1; optionally print it side-by-side."""
    comparison = compare_with_paper()
    if print_table:
        print("Table 1 - register file complexity "
              "(ours, with the paper's value beneath)")
        print(format_table1(comparison.rows))
        if comparison.ok:
            print("\nAll structural values match the paper; analytic "
                  "values within tolerance.")
        else:
            print("\nMISMATCHES:")
            for mismatch in comparison.mismatches:
                print(f"  {mismatch}")
    return comparison
