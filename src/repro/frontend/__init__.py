"""Instruction delivery and branch prediction."""

from repro.frontend.fetch import FetchedInstruction, FrontEnd
from repro.frontend.gskew import TwoBcGskewPredictor
from repro.frontend.predictors import BranchPredictor, make_predictor

__all__ = ["BranchPredictor", "FetchedInstruction", "FrontEnd",
           "TwoBcGskewPredictor", "make_predictor"]
