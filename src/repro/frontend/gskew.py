"""The 2Bc-gskew hybrid branch predictor.

This is the predictor the paper simulates (section 5.2): a 512 Kbit
2Bc-gskew, "equivalent to the branch predictor of the cancelled Alpha EV8"
[16], following the de-aliased hybrid design of Seznec and Michaud [17].

Structure - four banks of 2-bit saturating counters:

* **BIM** - a bimodal bank indexed by the branch address;
* **G0**, **G1** - two gshare-style banks indexed by *skewed* hashes of the
  address and global histories of different lengths;
* **Meta** - a chooser bank arbitrating between the bimodal prediction
  and the e-gskew majority vote.  It is indexed by the branch address
  (history length 0 by default): a per-branch chooser converges even for
  branches whose global history carries no information, which is what
  lets 2Bc-gskew fall back to bimodal accuracy on data-dependent
  branches.

Prediction: ``e-gskew = majority(BIM, G0, G1)``; the meta bank selects
between ``BIM`` and ``e-gskew``.

Update follows the *partial update* policy of [17], which is what
de-aliases the banks:

* on a correct overall prediction, only the banks that agreed with the
  outcome are strengthened (the wrong minority bank of a correct majority
  is left untouched);
* on a misprediction, every bank is trained toward the outcome;
* the chooser is trained whenever the bimodal and e-gskew predictions
  differ, toward whichever component was right.

The default geometry is four banks of 2^16 two-bit counters = 512 Kbit
total, matching the paper's sizing.
"""

from __future__ import annotations

from repro.frontend.predictors import (
    BranchPredictor,
    GlobalHistory,
    SaturatingCounterTable,
)


def _skew_h(value: int, bits: int) -> int:
    """The H skewing function of Seznec-Michaud (a GF(2) shuffle).

    ``H(x)`` rotates the low ``bits`` of ``value`` by one position and
    mixes the two top bits back into the bottom, giving three inter-bank
    hashes with pairwise-different conflict sets.
    """
    mask = (1 << bits) - 1
    value &= mask
    top = value >> (bits - 1)
    second = (value >> (bits - 2)) & 1
    return ((value << 1) & mask) | (top ^ second)


def _skew_h_inverse(value: int, bits: int) -> int:
    """The inverse shuffle H^-1, the third member of the skew family."""
    mask = (1 << bits) - 1
    value &= mask
    low = value & 1
    top = value >> (bits - 1)
    return (value >> 1) | ((low ^ top) << (bits - 1))


class TwoBcGskewPredictor(BranchPredictor):
    """512 Kbit 2Bc-gskew predictor (EV8-class)."""

    name = "2bcgskew"

    def __init__(
        self,
        bank_entries: int = 1 << 16,
        history_g0: int = 13,
        history_g1: int = 21,
        history_meta: int = 0,
    ) -> None:
        self.bim = SaturatingCounterTable(bank_entries)
        self.g0 = SaturatingCounterTable(bank_entries)
        self.g1 = SaturatingCounterTable(bank_entries)
        # The chooser starts biased toward e-gskew (weakly "use gskew").
        self.meta = SaturatingCounterTable(bank_entries,
                                           initial=(1 << 1))
        self.index_bits = bank_entries.bit_length() - 1
        self.history = GlobalHistory(max(history_g0, history_g1,
                                         history_meta))
        self.history_g0 = history_g0
        self.history_g1 = history_g1
        self.history_meta = history_meta
        length = self.history.length
        self._mask_g0 = (1 << min(history_g0, length)) - 1
        self._mask_g1 = (1 << min(history_g1, length)) - 1
        self._mask_meta = (1 << min(history_meta, length)) - 1
        # pc>>2 -> folded address.  ``_fold`` is XOR-linear, so the
        # expensive fold of the (wide) address is computed once per
        # branch address and combined with folds of the (narrow)
        # shifted histories on every prediction.
        self._fold_cache: dict[int, int] = {}

    # -- indexing ---------------------------------------------------------

    def _fold(self, value: int) -> int:
        """Fold an arbitrary-width value down to the bank index width."""
        bits = self.index_bits
        mask = (1 << bits) - 1
        folded = 0
        while value:
            folded ^= value & mask
            value >>= bits
        return folded

    def _indices(self, pc: int) -> tuple[int, int, int, int]:
        address = pc >> 2
        bits = self.index_bits
        cache = self._fold_cache
        index_bim = cache.get(address)
        if index_bim is None:
            index_bim = cache[address] = self._fold(address)
        hvalue = self.history.value
        hist0 = hvalue & self._mask_g0
        hist1 = hvalue & self._mask_g1
        histm = hvalue & self._mask_meta
        # fold(a ^ b) == fold(a) ^ fold(b): reuse the cached address
        # fold; only the narrow shifted histories are folded per call.
        base0 = index_bim ^ self._fold(hist0 << 3)
        base1 = index_bim ^ self._fold(hist1 << 1)
        basem = index_bim ^ self._fold(histm << 2)
        index_g0 = _skew_h(base0, bits)
        index_g1 = _skew_h_inverse(base1, bits)
        index_meta = _skew_h(basem ^ (basem >> 3), bits)
        return index_bim, index_g0, index_g1, index_meta

    # -- prediction ---------------------------------------------------------

    def _components(self, pc: int):
        index_bim, index_g0, index_g1, index_meta = self._indices(pc)
        pred_bim = self.bim.predict(index_bim)
        pred_g0 = self.g0.predict(index_g0)
        pred_g1 = self.g1.predict(index_g1)
        votes = int(pred_bim) + int(pred_g0) + int(pred_g1)
        pred_gskew = votes >= 2
        use_gskew = self.meta.predict(index_meta)
        overall = pred_gskew if use_gskew else pred_bim
        return (overall, pred_bim, pred_g0, pred_g1, pred_gskew, use_gskew,
                index_bim, index_g0, index_g1, index_meta)

    def predict(self, pc: int) -> bool:
        return self._components(pc)[0]

    def update(self, pc: int, taken: bool) -> None:
        self._train(self._components(pc), taken)

    def resolve(self, pc: int, taken: bool) -> bool:
        # The indexing work (history folds plus skews) dominates both
        # halves and nothing changes predictor state between them, so
        # the combined call computes the components exactly once.
        return self._train(self._components(pc), taken)

    def _train(self, components, taken: bool) -> bool:
        (overall, pred_bim, pred_g0, pred_g1, pred_gskew, use_gskew,
         index_bim, index_g0, index_g1, index_meta) = components

        if pred_bim != pred_gskew:
            # The chooser only learns when its inputs disagree.
            self.meta.update(index_meta, pred_gskew == taken)

        if overall == taken:
            # Partial update: agreeing banks are strengthened.  When the
            # two sides disagreed, the gskew banks are additionally
            # trained toward the outcome even if wrong - otherwise a
            # chooser parked on bimodal starves G0/G1 forever and the
            # predictor can never pick up a late-emerging history pattern
            # (e.g. a loop-exit branch first classified as biased).
            disagreed = pred_bim != pred_gskew
            if pred_bim == taken:
                self.bim.update(index_bim, taken)
            if pred_g0 == taken or disagreed:
                self.g0.update(index_g0, taken)
            if pred_g1 == taken or disagreed:
                self.g1.update(index_g1, taken)
        else:
            # Mispredicted: retrain everything toward the outcome.
            self.bim.update(index_bim, taken)
            self.g0.update(index_g0, taken)
            self.g1.update(index_g1, taken)

        self.history.push(taken)
        return overall

    def storage_bits(self) -> int:
        return (self.bim.storage_bits() + self.g0.storage_bits()
                + self.g1.storage_bits() + self.meta.storage_bits())
