"""Idealised instruction-delivery front end.

Section 5.2 of the paper: "the front-end stages in the pipeline, up to the
rename stage, deliver eight instructions/microoperations per cycle at a
sustained rate" - fetch-bandwidth artefacts are deliberately ignored.
Branch *direction* prediction is realistic (the 512 Kbit 2Bc-gskew);
branch targets are assumed perfectly predicted.

This module models exactly that contract: :class:`FrontEnd` wraps a trace
iterator and a direction predictor, tags every branch with whether it was
mispredicted, and leaves all *timing* (rename stalls, misprediction
bubbles) to the core - the processor stalls rename until
``resolution + minimum_penalty`` when it drains a mispredicted branch.

The predictor is trained immediately at fetch, in fetch order.  Because
wrong-path instructions are not simulated, this is equivalent to in-order
update at retirement and keeps the predictor state deterministic.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.frontend.predictors import BranchPredictor, make_predictor
from repro.trace.model import TraceInstruction


class FetchedInstruction:
    """A trace instruction annotated with its prediction outcome."""

    __slots__ = ("inst", "mispredicted")

    def __init__(self, inst: TraceInstruction, mispredicted: bool) -> None:
        self.inst = inst
        self.mispredicted = mispredicted


class FrontEnd:
    """Wraps a trace with branch prediction and delivery accounting.

    Parameters
    ----------
    trace:
        Iterable of :class:`TraceInstruction`.
    predictor:
        A :class:`BranchPredictor`; defaults to the paper's 2Bc-gskew.
    """

    def __init__(
        self,
        trace: Iterable[TraceInstruction],
        predictor: Optional[BranchPredictor] = None,
    ) -> None:
        self._trace: Iterator[TraceInstruction] = iter(trace)
        self.predictor = predictor or make_predictor("2bcgskew")
        self.branches = 0
        self.mispredictions = 0
        self.delivered = 0
        self._exhausted = False
        self._pending: Optional[FetchedInstruction] = None

    # -- delivery ---------------------------------------------------------

    def _fetch_one(self) -> Optional[FetchedInstruction]:
        try:
            inst = next(self._trace)
        except StopIteration:
            self._exhausted = True
            return None
        mispredicted = False
        if inst.is_branch:
            self.branches += 1
            predicted = self.predictor.resolve(inst.pc, inst.taken)
            mispredicted = predicted != inst.taken
            if mispredicted:
                self.mispredictions += 1
        return FetchedInstruction(inst, mispredicted)

    def peek(self) -> Optional[FetchedInstruction]:
        """The next instruction without consuming it (None at trace end)."""
        if self._pending is None and not self._exhausted:
            self._pending = self._fetch_one()
        return self._pending

    def pop(self) -> Optional[FetchedInstruction]:
        """Consume and return the next instruction (None at trace end)."""
        fetched = self.peek()
        if fetched is not None:
            self._pending = None
            self.delivered += 1
        return fetched

    @property
    def exhausted(self) -> bool:
        """True once the trace has been fully delivered."""
        return self._exhausted and self._pending is None

    # -- statistics ---------------------------------------------------------

    @property
    def misprediction_rate(self) -> float:
        """Mispredictions per executed branch (0.0 when no branches)."""
        if not self.branches:
            return 0.0
        return self.mispredictions / self.branches
