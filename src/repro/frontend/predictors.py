"""Conditional branch predictors.

The paper simulates a very large (512 Kbit) 2Bc-gskew predictor, the design
of the cancelled Alpha EV8 [16, 17].  That predictor lives in
:mod:`repro.frontend.gskew`; this module provides the building blocks
(saturating counters, a global history register) plus the simpler reference
predictors used in tests and ablations: always-taken, bimodal, and gshare.

All predictors share one interface: :meth:`BranchPredictor.predict` returns
the predicted direction for a branch at address ``pc``, and
:meth:`BranchPredictor.update` trains the predictor with the resolved
outcome.  Callers must invoke ``update`` exactly once per predicted branch,
in prediction order.
"""

from __future__ import annotations

from typing import List


class SaturatingCounterTable:
    """A table of n-bit saturating up/down counters.

    Counters sit in ``[0, 2**bits - 1]``; the MSB is the prediction.
    """

    def __init__(self, entries: int, bits: int = 2,
                 initial: int | None = None) -> None:
        if entries < 1 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        if bits < 1:
            raise ValueError("counters need at least one bit")
        self.entries = entries
        self.bits = bits
        self.max_value = (1 << bits) - 1
        self.threshold = 1 << (bits - 1)
        if initial is None:
            initial = self.threshold - 1  # weakly not-taken
        self.counters: List[int] = [initial] * entries
        self._mask = entries - 1

    def index(self, value: int) -> int:
        return value & self._mask

    def predict(self, index: int) -> bool:
        return self.counters[index & self._mask] >= self.threshold

    def update(self, index: int, taken: bool) -> None:
        index &= self._mask
        count = self.counters[index]
        if taken:
            if count < self.max_value:
                self.counters[index] = count + 1
        elif count > 0:
            self.counters[index] = count - 1

    def storage_bits(self) -> int:
        return self.entries * self.bits


class GlobalHistory:
    """A global branch-direction history shift register."""

    def __init__(self, length: int) -> None:
        if length < 0:
            raise ValueError("history length must be >= 0")
        self.length = length
        self.value = 0
        self._mask = (1 << length) - 1 if length else 0

    def push(self, taken: bool) -> None:
        if self.length:
            self.value = ((self.value << 1) | int(taken)) & self._mask

    def bits(self, count: int) -> int:
        """The ``count`` most recent outcomes (low bits most recent)."""
        if count >= self.length:
            return self.value
        return self.value & ((1 << count) - 1)


class BranchPredictor:
    """Interface for conditional branch predictors."""

    name = "base"

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def resolve(self, pc: int, taken: bool) -> bool:
        """Predict and train in one call; returns the prediction.

        Equivalent to ``predict`` followed by ``update`` with no state
        change in between.  Predictors whose two halves share expensive
        indexing work (the 2Bc-gskew recomputes all four bank indices)
        override this to do that work once.
        """
        predicted = self.predict(pc)
        self.update(pc, taken)
        return predicted

    def storage_bits(self) -> int:
        """Total predictor state, for sizing comparisons."""
        return 0


class AlwaysTakenPredictor(BranchPredictor):
    """Static always-taken baseline (used in tests)."""

    name = "always-taken"

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        return None


class BimodalPredictor(BranchPredictor):
    """Per-address 2-bit counters (Smith predictor)."""

    name = "bimodal"

    def __init__(self, entries: int = 1 << 14) -> None:
        self.table = SaturatingCounterTable(entries)

    def _index(self, pc: int) -> int:
        return self.table.index(pc >> 2)

    def predict(self, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(self._index(pc), taken)

    def storage_bits(self) -> int:
        return self.table.storage_bits()


class GsharePredictor(BranchPredictor):
    """Global-history XOR predictor (McFarling)."""

    name = "gshare"

    def __init__(self, entries: int = 1 << 14,
                 history_length: int = 12) -> None:
        self.table = SaturatingCounterTable(entries)
        self.history = GlobalHistory(history_length)

    def _index(self, pc: int) -> int:
        return self.table.index((pc >> 2) ^ self.history.value)

    def predict(self, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(self._index(pc), taken)
        self.history.push(taken)

    def storage_bits(self) -> int:
        return self.table.storage_bits()


def make_predictor(kind: str, **kwargs) -> BranchPredictor:
    """Factory used by the simulator configuration layer."""
    from repro.frontend.gskew import TwoBcGskewPredictor

    kinds = {
        "always-taken": AlwaysTakenPredictor,
        "bimodal": BimodalPredictor,
        "gshare": GsharePredictor,
        "2bcgskew": TwoBcGskewPredictor,
    }
    try:
        cls = kinds[kind]
    except KeyError:
        raise ValueError(f"unknown predictor kind {kind!r}; choose from "
                         f"{sorted(kinds)}") from None
    return cls(**kwargs)
