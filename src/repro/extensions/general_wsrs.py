"""Generalised N-cluster WSRS mappings (the 7-cluster companion design).

The conclusion of the paper points to a companion report (Seznec, IRISA
PI-1411) showing that WSRS "can be extended to a 7-cluster architecture
while maintaining the complexities of each individual wake-up logic entry
and each bypass point".  The report itself is not available to this
reproduction, so this module builds the natural generalisation from first
principles and documents its (slightly weaker) complexity guarantee.

A WSRS mapping over ``n`` clusters / ``n`` register subsets assigns to
each cluster ``c`` the set of subsets its *first* operand port may read
and the set its *second* operand port may read.  The correctness
condition of section 3.1 is **coverage**: every pair of operand subsets
``(a, b)`` must leave at least one cluster whose first port reads ``a``
and second port reads ``b``.

Two constructions are provided:

* the exact Figure 3 mapping for 4 clusters (the group Z2 x Z2: the
  first operand fixes the top/bottom bit, the second the left/right
  bit);
* cyclic difference-cover mappings for other sizes - for ``n = 7`` the
  perfect difference set of the Fano plane, ``D1 = {0, 1, 3}`` with
  ``D2 = {0, 2, 6}``, whose difference set ``D1 - D2`` covers Z7.  Each
  operand port then monitors 3 of the 7 clusters (9 result buses per
  wake-up entry with 2-way clusters - close to, though not exactly, the
  6-bus complexity of the 4-cluster design that the unavailable report
  claims for its construction), and three read-specialized (4R, 3W)
  copies per register suffice - one more than the two copies the report
  achieves with its (unpublished here) tighter construction.

The module provides legality queries, allocation-choice enumeration,
complexity accounting, and a trace-replay balance analysis, so the
extension can be studied without the full 4-cluster timing model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.metrics.unbalance import unbalancing_degree
from repro.trace.model import TraceInstruction

SubsetSets = Tuple[Tuple[int, ...], ...]


def _normalize(table: Sequence[Sequence[int]], n: int,
               label: str) -> SubsetSets:
    if len(table) != n:
        raise ConfigError(f"{label}: need one subset set per cluster")
    result = []
    for cluster, subsets in enumerate(table):
        subsets = tuple(sorted(set(subsets)))
        if not subsets:
            raise ConfigError(f"{label}: cluster {cluster} reads nothing")
        if any(not 0 <= s < n for s in subsets):
            raise ConfigError(f"{label}: cluster {cluster} reads an "
                              f"unknown subset")
        result.append(subsets)
    return tuple(result)


@dataclass(frozen=True)
class WsrsMapping:
    """A generalised WSRS read-specialization mapping.

    ``first_subsets[c]`` / ``second_subsets[c]`` list the register
    subsets cluster ``c`` may read through its first / second operand
    port.  Cluster ``c`` always *writes* subset ``c``.
    """

    num_clusters: int
    first_subsets: SubsetSets
    second_subsets: SubsetSets

    def __post_init__(self) -> None:
        n = self.num_clusters
        if n < 2:
            raise ConfigError("need at least two clusters")
        object.__setattr__(self, "first_subsets",
                           _normalize(self.first_subsets, n, "first port"))
        object.__setattr__(self, "second_subsets",
                           _normalize(self.second_subsets, n, "second port"))
        for a in range(n):
            for b in range(n):
                if not self.clusters_for(a, b):
                    raise ConfigError(
                        f"operand subsets ({a}, {b}) have no executing "
                        f"cluster - the mapping is incomplete")

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_difference_covers(cls, num_clusters: int,
                               first_cover: Sequence[int],
                               second_cover: Sequence[int]) -> "WsrsMapping":
        """Cyclic mapping: cluster ``c`` reads ``c + D (mod n)``."""
        n = num_clusters
        first = [tuple((c + d) % n for d in first_cover) for c in range(n)]
        second = [tuple((c + d) % n for d in second_cover) for c in range(n)]
        return cls(n, tuple(first), tuple(second))

    # -- structural queries -----------------------------------------------

    def first_readers(self, subset: int) -> List[int]:
        """Clusters whose first port is read-connected to ``subset``."""
        return [c for c in range(self.num_clusters)
                if subset in self.first_subsets[c]]

    def second_readers(self, subset: int) -> List[int]:
        return [c for c in range(self.num_clusters)
                if subset in self.second_subsets[c]]

    # -- legality / allocation --------------------------------------------

    def legal(self, cluster: int, first_subset: Optional[int],
              second_subset: Optional[int]) -> bool:
        if first_subset is not None \
                and first_subset not in self.first_subsets[cluster]:
            return False
        if second_subset is not None \
                and second_subset not in self.second_subsets[cluster]:
            return False
        return True

    def clusters_for(self, first_subset: Optional[int],
                     second_subset: Optional[int]) -> List[int]:
        """Clusters able to execute an instruction with these operands."""
        return [c for c in range(self.num_clusters)
                if self.legal(c, first_subset, second_subset)]

    # -- complexity accounting --------------------------------------------

    def wakeup_clusters_per_operand(self) -> int:
        """Clusters one operand port must monitor (max over ports)."""
        first = max(len(s) for s in self.first_subsets)
        second = max(len(s) for s in self.second_subsets)
        return max(first, second)

    def result_buses_per_operand(self, results_per_cluster: int = 3) -> int:
        return self.wakeup_clusters_per_operand() * results_per_cluster

    def read_copies_per_register(self, ports_per_copy: int = 4,
                                 ports_per_cluster_operand: int = 2) -> int:
        """Read-specialized copies needed per register.

        A subset is read by ``len(first_readers)`` clusters on first
        ports plus ``len(second_readers)`` on second ports, each needing
        ``ports_per_cluster_operand`` read ports; copies provide
        ``ports_per_copy`` read ports each.
        """
        worst = 0
        for subset in range(self.num_clusters):
            ports = (len(self.first_readers(subset))
                     + len(self.second_readers(subset))) \
                * ports_per_cluster_operand
            worst = max(worst, ports)
        return -(-worst // ports_per_copy)  # ceil division

    def mean_choices(self) -> float:
        """Average legal clusters over all dyadic subset pairs."""
        n = self.num_clusters
        total = sum(len(self.clusters_for(a, b))
                    for a in range(n) for b in range(n))
        return total / (n * n)


def four_cluster_mapping() -> WsrsMapping:
    """The exact Figure 3 mapping (group Z2 x Z2).

    Cluster ``c = 2f + s`` reads first operands from the subsets with
    top/bottom bit ``f`` and second operands from the subsets with
    left/right bit ``s``.
    """
    first = tuple(tuple(sorted((2 * (c >> 1), 2 * (c >> 1) + 1)))
                  for c in range(4))
    second = tuple(tuple(sorted((c & 1, 2 + (c & 1)))) for c in range(4))
    return WsrsMapping(4, first, second)


def seven_cluster_mapping() -> WsrsMapping:
    """The Fano-plane 7-cluster WSRS mapping (see module docstring)."""
    return WsrsMapping.from_difference_covers(7, (0, 1, 3), (0, 2, 6))


def make_mapping(num_clusters: int) -> WsrsMapping:
    """A valid mapping for the requested cluster count."""
    if num_clusters == 4:
        return four_cluster_mapping()
    if num_clusters == 7:
        return seven_cluster_mapping()
    # Generic fallback: half-wheel covers (always complete, coarser).
    n = num_clusters
    d1 = tuple(range((n + 1) // 2))
    d2 = tuple(range(0, -(n // 2 + 1), -1))
    return WsrsMapping.from_difference_covers(n, d1,
                                              tuple(d % n for d in d2))


class MappedRandomAllocator:
    """Random allocation over the legal clusters of a generalised mapping.

    The N-cluster analogue of the RC policy: for every instruction the
    legal (cluster, swapped) choices under the mapping are enumerated
    (commutative clusters assumed, so the exchanged-operand form is always
    available) and one is drawn uniformly.  Registered with the allocation
    factory under the name ``"mapped_random"``; the mapping is selected by
    the machine's cluster count via :func:`make_mapping`.
    """

    name = "mapped_random"
    wsrs_legal = True

    def __init__(self, num_clusters: int = 4, seed: int = 0) -> None:
        self.num_clusters = num_clusters
        self.mapping = make_mapping(num_clusters)
        self.seed = seed
        self.rng = random.Random(seed)

    def reset(self) -> None:
        """Reseed the per-instance RNG (the only state this policy has),
        so a reused allocator replays its exact allocation stream."""
        self.rng = random.Random(self.seed)

    def allocate(self, inst: TraceInstruction, subset_of=None,
                 occupancy=None):
        if subset_of is None:
            raise ConfigError("mapped_random needs the subset map")
        mapping = self.mapping
        first = subset_of(inst.src1) if inst.src1 is not None else None
        second = subset_of(inst.src2) if inst.src2 is not None else None
        choices = [(cluster, False)
                   for cluster in mapping.clusters_for(first, second)]
        if first != second and (first is not None or second is not None):
            for cluster in mapping.clusters_for(second, first):
                if all(cluster != c for c, _ in choices):
                    choices.append((cluster, True))
        return choices[self.rng.randrange(len(choices))]


# ---------------------------------------------------------------------------
# trace-replay balance analysis
# ---------------------------------------------------------------------------

@dataclass
class BalanceReport:
    """Outcome of replaying a trace through a generalised mapping."""

    num_clusters: int
    instructions: int
    unbalancing_degree: float
    cluster_shares: List[float]
    mean_choices: float


def analyze_balance(mapping: WsrsMapping,
                    trace: Iterable[TraceInstruction],
                    seed: int = 0) -> BalanceReport:
    """Replay a trace through the mapping's allocation constraints.

    Register subsets are tracked symbolically (each logical register
    holds the subset of the cluster that last wrote it); among the legal
    clusters of every instruction one is drawn at random, as the RM/RC
    policies do.  The report carries the Figure 5 unbalancing degree, the
    long-run per-cluster shares, and the mean number of legal choices -
    the "degrees of freedom" the mapping offers.
    """
    rng = random.Random(seed)
    n = mapping.num_clusters
    subset_of: Dict[int, int] = {}
    allocations: List[int] = []
    total_choices = 0
    count = 0
    for inst in trace:
        first = subset_of.get(inst.src1, inst.src1 % n) \
            if inst.src1 is not None else None
        second = subset_of.get(inst.src2, inst.src2 % n) \
            if inst.src2 is not None else None
        clusters = mapping.clusters_for(first, second)
        cluster = clusters[rng.randrange(len(clusters))]
        if inst.dest is not None:
            subset_of[inst.dest] = cluster
        allocations.append(cluster)
        total_choices += len(clusters)
        count += 1
    if count:
        shares = [allocations.count(c) / count for c in range(n)]
    else:
        shares = [0.0] * n
    return BalanceReport(
        num_clusters=n,
        instructions=count,
        unbalancing_degree=unbalancing_degree(allocations, n),
        cluster_shares=shares,
        mean_choices=(total_choices / count) if count else 0.0,
    )
