"""SMT workloads: the register-pressure case of section 2.3.

The deadlock analysis of the paper singles out simultaneous
multithreading: "for SMTs or for ISAs featuring very large numbers of
registers (e.g. IA-64), [subsets at least as large as the logical
register file] might not be a realistic solution" - with ``T`` hardware
threads the architected state is ``T x`` the ISA's logical registers, so
write-specialized subsets realistically *cannot* all hold a full copy
and one of the two workarounds becomes mandatory.

This module builds SMT machines out of the existing single-threaded
pieces, with zero changes to the core:

* each hardware thread gets a private slice of the *flat logical register
  space* (:func:`remap_thread_registers`), which is exactly how the
  renamer sees per-thread architected state on a real SMT;
* the thread traces are interleaved round-robin in fetch chunks
  (:func:`interleave`), modelling an ICOUNT-less round-robin fetch
  policy;
* :func:`smt_machine_config` widens the configuration's logical register
  counts accordingly (and leaves the *physical* file unchanged - that is
  the point of the experiment).

Example::

    from repro.extensions.smt import smt_machine_config, smt_trace
    from repro.config import ws_rr
    from repro.core.processor import simulate

    config = smt_machine_config(ws_rr(512), threads=2,
                                deadlock_policy="moves")
    trace = smt_trace(["gzip", "mcf"], count_per_thread=50_000)
    stats = simulate(config, trace, measure=100_000)
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.config import MachineConfig
from repro.errors import ConfigError
from repro.trace.model import TraceInstruction
from repro.trace.profiles import spec_trace
from repro.trace.synthetic import NUM_FP_LOGICAL, NUM_INT_LOGICAL

#: Per-thread PC offset, so threads' branch sites do not alias in the
#: predictor unless they genuinely share code.
THREAD_PC_STRIDE = 1 << 24


def remap_thread_registers(
    inst: TraceInstruction,
    thread: int,
    threads: int,
    int_logical: int = NUM_INT_LOGICAL,
    fp_logical: int = NUM_FP_LOGICAL,
) -> TraceInstruction:
    """Move one instruction's registers into thread ``thread``'s slice.

    The combined flat space holds all threads' integer registers first
    (``threads * int_logical``), then all FP registers - matching the
    :mod:`repro.trace.model` convention for a machine whose logical
    counts have been widened by :func:`smt_machine_config`.
    """

    def remap(logical):
        if logical is None:
            return None
        if logical < int_logical:  # integer register
            return thread * int_logical + logical
        fp_index = logical - int_logical
        return (threads * int_logical + thread * fp_logical + fp_index)

    return TraceInstruction(
        op=inst.op,
        dest=remap(inst.dest),
        src1=remap(inst.src1),
        src2=remap(inst.src2),
        pc=inst.pc + thread * THREAD_PC_STRIDE,
        taken=inst.taken,
        addr=inst.addr + thread * (1 << 30),
        commutative=inst.commutative,
    )


def interleave(
    traces: Sequence[Iterable[TraceInstruction]],
    chunk: int = 4,
    int_logical: int = NUM_INT_LOGICAL,
    fp_logical: int = NUM_FP_LOGICAL,
) -> Iterator[TraceInstruction]:
    """Round-robin-interleave per-thread traces into one SMT stream.

    ``chunk`` instructions are fetched from each thread in turn (a
    round-robin fetch policy).  A thread that runs dry simply drops out;
    the stream ends when every thread is exhausted.
    """
    if not traces:
        return
    threads = len(traces)
    iterators: List[Iterator[TraceInstruction]] = [iter(t) for t in traces]
    alive = [True] * threads
    while any(alive):
        for thread, iterator in enumerate(iterators):
            if not alive[thread]:
                continue
            for _ in range(chunk):
                try:
                    inst = next(iterator)
                except StopIteration:
                    alive[thread] = False
                    break
                yield remap_thread_registers(inst, thread, threads,
                                             int_logical, fp_logical)


def smt_machine_config(base: MachineConfig, threads: int,
                       deadlock_policy: str | None = None,
                       ) -> MachineConfig:
    """Widen a configuration's architected state for ``threads`` threads.

    The physical register file is left untouched: the experiment is
    precisely whether it can still rename ``threads`` copies of the
    architected state.  For write-specialized machines whose subsets end
    up smaller than the combined logical count, a ``deadlock_policy``
    must be supplied (section 2.3) - otherwise the configuration is
    rejected, exactly as the paper's sizing rule dictates.
    """
    if threads < 1:
        raise ConfigError("need at least one thread")
    kwargs = dict(
        name=f"{base.name} SMT-{threads}",
        int_logical_registers=base.int_logical_registers * threads,
        fp_logical_registers=base.fp_logical_registers * threads,
    )
    if deadlock_policy is not None:
        kwargs["deadlock_policy"] = deadlock_policy
    config = base.with_changes(**kwargs)
    config.validate()
    return config


def smt_trace(benchmarks: Sequence[str], count_per_thread: int,
              seed: int = 1, chunk: int = 4,
              ) -> Iterator[TraceInstruction]:
    """An interleaved SMT stream of SPEC-named benchmark profiles."""
    traces = [spec_trace(name, count_per_thread, seed=seed + index)
              for index, name in enumerate(benchmarks)]
    return interleave(traces, chunk=chunk)
