"""Extensions beyond the paper's 4-cluster design."""

from repro.extensions.general_wsrs import (
    WsrsMapping,
    analyze_balance,
    four_cluster_mapping,
    make_mapping,
    seven_cluster_mapping,
)

__all__ = ["WsrsMapping", "analyze_balance", "four_cluster_mapping",
           "make_mapping", "seven_cluster_mapping"]
