"""The cycle-level clustered out-of-order engine."""

from repro.core.processor import Processor, simulate
from repro.core.stats import SimulationStats

__all__ = ["Processor", "SimulationStats", "simulate"]
