"""Config-specialized stepper: the main loop's *third gear*.

The reference stepper (:meth:`repro.core.processor.Processor.step`) and
the event-horizon fast path both re-consult the machine configuration on
every cycle - ``config.front_width``, the forward-delay policy, subset
routing, the deadlock policy - although every one of those values is
frozen for the lifetime of a run.  This module applies the classic
trace-based *speculate / guard / commit* specialization pattern to the
simulator itself: given a frozen :class:`~repro.config.MachineConfig`,
:func:`build_specialized_runner` generates Python source for a run loop
with every configuration constant baked in as a literal, compiles it
once with :func:`compile`/``exec``, and returns a closure bound to one
:class:`~repro.core.processor.Processor`.

What the generated stepper bakes in
-----------------------------------

* widths and capacities (front/commit width, ROB size, per-cluster
  window), the cluster count and the per-cluster functional-unit mix;
* the forward-delay table (already precomputed by the processor) and
  the subset-routing arithmetic (``subset = cluster`` on a specialized
  machine, ``0`` on a conventional one) - the register-file layout
  constants the paper's whole argument is about;
* the deadlock policy: on ``"none"`` configurations the entire
  deadlock-move machinery vanishes from the generated code;
* the multiply/divide arbitration: private pipelined units generate no
  busy-tracking code at all.

It also flattens the per-cycle call tree (commit, wake/select, execute,
rename, wake-up computation and the event-horizon jump detection) into
one function frame with all hot state held in locals.  The scheduler
structures themselves are the event-driven ones of
:mod:`repro.core.issue_queue` - calendar buckets on the pending side,
an age-sorted in-place ready list, and the memory/muldiv parking lists
- mutated *in place*, so a fallback resumes on the very same objects
with no conversion step, and the inlined wake/select/release loops are
line-for-line the specialized rendering of the generic ones.

Guards and the fallback contract
--------------------------------

Specialization *speculates* that the run stays inside the envelope the
code was generated for.  Conditions outside it fall back to the generic
gears without statistics divergence:

* **entry guards** (:func:`specialization_blockers`): an attached
  sanitizer or observer/tracer (their hooks must fire every cycle),
  renaming implementation 1 (its free-list state mutates even on idle
  cycles), and paranoid per-uop read-legality checking.  A blocked
  processor simply keeps the event-horizon gear.
* **mid-run guard**: a deadlock-breaking move.  The generated code
  executes the move cycle with exactly the reference semantics (charge,
  debt carry-over, ``stats.deadlock_moves``), finishes the cycle, then
  returns control permanently to the generic loop - no cycle is lost or
  double-counted.

The acceptance bar is the same as the event horizon's: every
``SimulationStats`` counter and per-cluster histogram bit-identical to
the reference stepper, on every section-5 configuration
(``tests/test_specialize.py`` pins this, plus a hypothesis property test
over random configurations).
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional

from repro.config import MachineConfig
from repro.core.uop import UNKNOWN_CYCLE, InFlightUop
from repro.core.lsq import WORD_BYTES
from repro.trace.model import FP_CLASSES, OpClass

#: The three gears of the main loop, slowest to fastest.
GEARS = ("reference", "horizon", "specialized")

#: Compiled stepper cache: generated source -> code object (the source
#: itself is a complete key - it embeds every baked constant).
_CODE_CACHE: Dict[str, object] = {}

#: Name of the generated function - the stable analysis surface the
#: SPEC-EQUIV checker (repro.analyze.passes.spec_equiv) locates in the
#: generated AST.
SPECIALIZED_FUNC_NAME = "_specialized_run"

#: Names the compiled stepper resolves from its exec namespace; the
#: generated body may reference globals only from this closed set (plus
#: builtins) - anything else is codegen drift.
STEPPER_NAMESPACE = ("insort", "DeadlockedPipeline", "Uop",
                     "new_uop", "Fetched", "_FP", "OP_LOAD", "OP_STORE",
                     "OP_BRANCH", "OP_IMULDIV", "FWD")


def generated_source_filename(config: MachineConfig) -> str:
    """The pseudo-filename the generated stepper compiles under.

    Static-analysis findings against generated code report this as
    their path, so a finding names the configuration whose codegen
    diverged rather than a real file.
    """
    return f"<specialized:{config.name}>"


def specialization_blockers(processor) -> List[str]:
    """Why ``processor`` cannot run the specialized stepper (may be empty).

    Each entry is a human-readable reason; an empty list means the
    specialized envelope applies.  The conditions mirror the guard list
    of the module docstring - anything that requires per-cycle hooks or
    per-cycle mutable config-dependent state blocks specialization (the
    run then stays on the horizon/reference gears, which support all of
    them).
    """
    blockers: List[str] = []
    if processor.sanitizer is not None:
        blockers.append("sanitizer attached (per-cycle hooks)")
    if processor.obs is not None:
        blockers.append("observer/tracer attached (per-cycle hooks)")
    if processor.config.rename_impl == 1:
        blockers.append("rename_impl=1 recycles free-list state each cycle")
    if processor.check_invariants \
            and processor.config.uses_read_specialization:
        blockers.append("paranoid per-uop read-legality checks")
    return blockers


def _subset_exprs(config: MachineConfig):
    """Source expressions for subset routing, pruned per configuration."""
    if config.num_subsets > 1:
        return {
            "SUB": "cluster",
            "RET_INT": "pdest // %d" % config.int_subset_size,
            "RET_FP": "(pdest - %d) // %d" % (
                config.int_physical_registers, config.fp_subset_size),
            "FREE_INT": "pold // %d" % config.int_subset_size,
            "FREE_FP": "_local // %d" % config.fp_subset_size,
        }
    return {"SUB": "0", "RET_INT": "0", "RET_FP": "0",
            "FREE_INT": "0", "FREE_FP": "0"}


def generate_stepper_source(config: MachineConfig) -> str:
    """The specialized run-loop source for ``config`` (pure function).

    Exposed for tests and debugging: the returned text is what
    :func:`build_specialized_runner` compiles, with every configuration
    constant visible as a literal.
    """
    cluster = config.cluster
    nc = config.num_clusters
    muldiv_tracked = (not config.pipelined_muldiv) or config.shared_muldiv
    unit_ci = "_ci // 2" if config.shared_muldiv else "_ci"
    unit_cl = "cluster // 2" if config.shared_muldiv else "cluster"
    sub = _subset_exprs(config)
    cluster_range = tuple(range(nc))
    lat_size = max(int(op) for op in OpClass) + 1
    no_event = UNKNOWN_CYCLE
    progress_limit = 100_000  # mirrors processor._PROGRESS_LIMIT
    l1 = config.memory.l1
    l1_off = l1.line_bytes.bit_length() - 1
    l1_mask = l1.num_sets - 1
    l1_setbits = l1_mask.bit_length()

    if muldiv_tracked:
        localize_muldiv = "    busy_until = proc._muldiv_busy_until"
        if cluster.num_alus:
            parked_live = f"""\
                    if parked_mds[_ci] \\
                            and busy_until[{unit_ci}] <= cycle:
                        live = True
                        break"""
        else:  # no ALUs: an IMULDIV can never park
            parked_live = ""
        ready_alu = f"""\
                            if _u.inst.op == OP_IMULDIV:
                                if busy_until[{unit_ci}] <= cycle:
                                    live = True
                                    break
                            else:
                                live = True
                                break"""
        muldiv_horizon = """\
                    for _b in busy_until:
                        if cycle < _b < horizon:
                            horizon = _b"""
        unpark_muldiv = f"""\
                    _pmd = parked_mds[_ci]
                    if _pmd and busy_until[{unit_ci}] <= cycle:
                        _r.extend(_pmd)
                        del _pmd[:]
                        _r.sort()"""
        muldiv_quota = f"""\
                    _mdq = busy_until[{unit_ci}] <= cycle"""
        alu_select = """\
                            if _alus:
                                if uop.inst.op == OP_IMULDIV:
                                    if _mdq:
                                        _mdq = False
                                        _alus -= 1
                                        _take = True
                                    else:
                                        _pmd.append(_entry)
                                        if _idx is None:
                                            _idx = [_i]
                                        else:
                                            _idx.append(_i)
                                else:
                                    _alus -= 1
                                    _take = True"""
        if not config.pipelined_muldiv:
            muldiv_exec = f"""\
                        if _op == OP_IMULDIV:
                            busy_until[{unit_cl}] = _rc"""
        else:  # pipelined but shared: one operation per cycle per pair
            muldiv_exec = f"""\
                        if _op == OP_IMULDIV:
                            busy_until[{unit_cl}] = cycle + 1"""
    else:
        localize_muldiv = ""
        parked_live = ""
        ready_alu = """\
                            live = True
                            break"""
        muldiv_horizon = ""
        unpark_muldiv = ""
        muldiv_quota = ""
        alu_select = """\
                            if _alus:
                                _alus -= 1
                                _take = True"""
        muldiv_exec = ""

    # Select: the budgeted age-ordered scan over the ready list.  On the
    # section-5 configurations the ready list holds a single entry on the
    # vast majority of non-empty visits, so when nothing is quota-tracked
    # and every unit class is present (a lone ready uop is then always
    # issuable) the scan is wrapped in a len==1 fast path.
    select_scan = f"""\
                    _budget = {cluster.issue_width}
                    _alus = {cluster.num_alus}
                    _lsus = {cluster.num_lsus}
                    _fpus = {cluster.num_fpus}
{muldiv_quota}
                    _n = len(_r)
                    _i = 0
                    _picked_uops = None
                    _idx = None
                    while _budget and _i < _n:
                        _entry = _r[_i]
                        uop = _entry[1]
                        _take = False
                        if uop.mem_index >= 0:
                            if _lsus:
                                _lsus -= 1
                                _take = True
                        elif uop.inst.op in _FP:
                            if _fpus:
                                _fpus -= 1
                                _take = True
                        else:
{alu_select}
                        if _take:
                            _budget -= 1
                            if _picked_uops is None:
                                _picked_uops = [uop]
                            else:
                                _picked_uops.append(uop)
                            if _idx is None:
                                _idx = [_i]
                            else:
                                _idx.append(_i)
                        _i += 1
                    if _idx is not None:
                        for _j in reversed(_idx):
                            del _r[_j]
                    if _picked_uops is None:
                        continue"""
    if (not muldiv_tracked and cluster.issue_width and cluster.num_alus
            and cluster.num_lsus and cluster.num_fpus):
        pick_block = (
            "                    if len(_r) == 1:\n"
            "                        _picked_uops = (_r[0][1],)\n"
            "                        del _r[0]\n"
            "                    else:\n"
            + "\n".join("    " + ln if ln.strip() else ln
                        for ln in select_scan.split("\n")))
    else:
        pick_block = select_scan

    # Steering: the paper's policies are baked straight into the loop.
    # Round-robin is pure arithmetic (its cursor is mirrored and written
    # back); the RC/RM policies of section 5.2.1 become inline subset
    # arithmetic over the localized map tables plus direct calls on the
    # allocator's own Random - the draw sequence is kept call-for-call
    # identical to the policy objects, so the allocation stream (and
    # with it every statistic) is bit-identical.  Anything else keeps
    # the ``allocate()`` call.
    def _steer_subset(var: str) -> str:
        """Inline ``renamer.subset_of_logical(var)``."""
        return ("(int_map[%s] // %d if %s < %d else fp_map[%s - %d] // %d)"
                % (var, config.int_subset_size, var,
                   config.int_logical_registers, var,
                   config.int_logical_registers, config.fp_subset_size))

    if config.allocation_policy == "round_robin":
        localize_alloc = "    rr_next = proc.allocator._next"
        writeback_alloc = "        proc.allocator._next = rr_next"
        alloc_block = f"""\
                        pending_decision = (rr_next, False)
                        rr_next += 1
                        if rr_next == {config.num_clusters}:
                            rr_next = 0"""
    elif config.allocation_policy == "random_commutative" and nc == 4:
        # RC: draw the form first (always), then dyadic is fully
        # determined, monadic draws one of the form's two clusters,
        # noadic draws uniformly (the form bit is discarded).
        localize_alloc = (
            "    rng_bits = proc.allocator.rng.getrandbits\n"
            "    rng_rand = proc.allocator.rng.randrange")
        writeback_alloc = ""
        alloc_block = f"""\
                        _as1 = inst.src1
                        _as2 = inst.src2
                        _ab = rng_bits(1)
                        if _as1 is not None and _as2 is not None:
                            if _ab:
                                _as1, _as2 = _as2, _as1
                            pending_decision = (
                                2 * ({_steer_subset('_as1')} >> 1)
                                + ({_steer_subset('_as2')} & 1),
                                _ab == 1)
                        elif _as1 is not None or _as2 is not None:
                            _aop = _as1 if _as1 is not None else _as2
                            _asub = {_steer_subset('_aop')}
                            if (_as1 is not None) != (_ab == 1):
                                pending_decision = (
                                    2 * (_asub >> 1) + rng_bits(1),
                                    _ab == 1)
                            else:
                                pending_decision = (
                                    (_asub & 1) + 2 * rng_bits(1),
                                    _ab == 1)
                        else:
                            pending_decision = (rng_rand(4), False)"""
    elif config.allocation_policy == "random_monadic" and nc == 4:
        # RM: dyadic is fully constrained (no draw), monadic draws the
        # free left/right or top/bottom bit, noadic draws uniformly.
        localize_alloc = "    rng_rand = proc.allocator.rng.randrange"
        writeback_alloc = ""
        alloc_block = f"""\
                        _as1 = inst.src1
                        _as2 = inst.src2
                        if _as1 is not None and _as2 is not None:
                            pending_decision = (
                                2 * ({_steer_subset('_as1')} >> 1)
                                + ({_steer_subset('_as2')} & 1), False)
                        elif _as1 is not None:
                            pending_decision = (
                                2 * ({_steer_subset('_as1')} >> 1)
                                + rng_rand(2), False)
                        elif _as2 is not None:
                            pending_decision = (
                                ({_steer_subset('_as2')} & 1)
                                + 2 * rng_rand(2), False)
                        else:
                            pending_decision = (rng_rand(4), False)"""
    else:
        localize_alloc = "    allocate = proc.allocator.allocate"
        writeback_alloc = ""
        alloc_block = """\
                        pending_decision = allocate(
                            inst, subset_of, inflights)"""

    policy = config.deadlock_policy
    # Only the "moves" policy can trip the mid-run guard, so only that
    # variant pays for the per-cycle check.  Tripping ends the cycle
    # normally (counters already advanced); the idle-progress bookkeeping
    # it skips lives in locals that are never written back.
    if policy == "moves":
        tripped_check = """\
                if tripped:
                    return False"""
    else:
        tripped_check = ""
    if policy == "none":
        deadlock_block = """\
                            stall_noreg += _budget
                            break"""
        deadlock_stats_sync = ""
    elif policy == "raise":
        deadlock_block = f"""\
                            renamer._maybe_handle_deadlock(
                                0 if dest < {config.int_logical_registers}
                                else 1, {sub['SUB']})
                            stall_noreg += _budget
                            break"""
        deadlock_stats_sync = ""
    else:  # "moves": the mid-run guard - handle the cycle, then fall back
        deadlock_block = f"""\
                            _mb = renamer.deadlock_moves
                            renamer._maybe_handle_deadlock(
                                0 if dest < {config.int_logical_registers}
                                else 1, {sub['SUB']})
                            if not _q:
                                stall_noreg += _budget
                                break
                            _mv = renamer.deadlock_moves - _mb
                            if _mv:
                                _charged = _budget - 1
                                if _mv < _charged:
                                    _charged = _mv
                                _budget -= _charged
                                move_debt += _mv - _charged
                                stall_moves += _charged
                                tripped = True"""
        deadlock_stats_sync = """\
                    if tripped:
                        stats.deadlock_moves = (renamer.deadlock_moves
                                                - measured_base)"""

    src = f'''\
def _specialized_run(proc, committed_target):
    """Specialized run loop for configuration {config.name!r}.

    Returns True when the target was reached (or the trace drained)
    entirely inside the specialized envelope; False when a guard
    tripped and the caller must continue on the generic gears.  All
    machine state is written back either way (try/finally), so a
    fallback resumes mid-run without divergence.
    """
    if proc.sanitizer is not None or proc.obs is not None \\
            or proc._move_debt:
        return False
    stats = proc.stats
    renamer = proc.renamer
    frontend = proc.frontend
    trace_iter = frontend._trace
    resolve = frontend.predictor.resolve
    _fetched = frontend._pending
    if _fetched is None:
        pend_inst = None
        pend_misp = False
    else:
        pend_inst = _fetched.inst
        pend_misp = _fetched.mispredicted
    fe_exhausted = frontend._exhausted
    fe_branches = frontend.branches
    fe_mispredicts = frontend.mispredictions
    delivered = frontend.delivered
{localize_alloc}
    subset_of = renamer.subset_of_logical
    memorder = proc.memorder
    memory = proc.memory
    mem_miss = memory.access_after_l1_miss
    l1_sets = memory.l1._sets
    l1_hits = memory.l1.hits
    mem_loads = memory.loads
    mem_stores = memory.stores
    schedulers = proc.schedulers
    # The event-driven scheduler structures, shared *in place*: calendar
    # buckets (wake cycle -> entry list) with a sorted key list on the
    # pending side, the age-sorted ready list, and the memory/muldiv
    # parking lists.  A fallback resumes on the same objects; the
    # per-cluster pending-size counters are recomputed at write-back.
    buckets = [s._buckets for s in schedulers]
    bkeys = [s._bucket_keys for s in schedulers]
    readys = [s._ready for s in schedulers]
    parked_mems = [s._parked_mem for s in schedulers]
    parked_mds = [s._parked_muldiv for s in schedulers]
    mo_parked = memorder._parked
    inflights = [s.inflight for s in schedulers]
    rob = proc._rob
    rob_popleft = rob.popleft
    rob_append = rob.append
    reg_result = proc._reg_result
    reg_cluster = proc._reg_cluster
    reg_waiters = proc._reg_waiters
    waiters_pop = reg_waiters.pop
    waiters_get = reg_waiters.get
    int_map = renamer.int_class.map_table._map
    fp_map = renamer.fp_class.map_table._map
    int_free = [f._queue for f in renamer.int_class.free_lists]
    fp_free = [f._queue for f in renamer.fp_class.free_lists]
    int_out = renamer.int_class.outstanding_writes
    fp_out = renamer.fp_class.outstanding_writes
    store_words = memorder._store_words
    store_by_seq = memorder._store_by_seq
    store_get = store_words.get
    fwd_rows = FWD
    LAT = [0] * {lat_size}
    for _op, _lat in proc._latencies.items():
        LAT[_op] = _lat
{localize_muldiv}
    balance = stats._balance
    bcounts = balance._counts
    bfilled = balance._filled
    bgroup = balance.group_size
    blow = balance.low
    bhigh = balance.high
    bkeep = balance._keep_groups
    bgroups = balance.groups
    bt_total = balance.groups_total
    bt_unb = balance.groups_unbalanced
    sg_total = stats.groups_total
    sg_unb = stats.groups_unbalanced
    cluster_allocated = stats.cluster_allocated
    cluster_issued = stats.cluster_issued

    cycle = proc.cycle
    seq_counter = proc._seq
    move_debt = 0
    rename_blocked_until = proc._rename_blocked_until
    waiting_branch = proc._waiting_branch
    pending_decision = proc._pending_decision
    jumps = proc.horizon_jumps
    jump_skipped = proc.horizon_cycles_skipped
    issued_upto = memorder._issued_upto
    next_mem_index = memorder._next_index
    renamed = renamer.renamed
    reg_stalls = renamer.reg_stalls
    measured_base = proc._measured_moves_base

    cycles = stats.cycles
    committed = stats.committed
    dispatched = stats.dispatched
    issued = stats.issued
    branches = stats.branches
    mispredictions = stats.mispredictions
    loads = stats.loads
    stores = stats.stores
    store_forwards = stats.store_forwards
    bypass_intra = stats.bypass_edges_intra
    bypass_inter = stats.bypass_edges_inter
    l1_misses = stats.l1_misses
    l2_misses = stats.l2_misses
    stall_rob = stats.stall_rob_full
    stall_cluster = stats.stall_cluster_full
    stall_noreg = stats.stall_no_register
    stall_branch = stats.stall_branch_penalty
    stall_moves = stats.stall_deadlock_moves
    swapped_forms = stats.swapped_forms

    tripped = False
    idle_events = 0
    last_committed = committed
    try:
        while committed < committed_target:
            if fe_exhausted and pend_inst is None and not rob:
                break

            # -- event-horizon jump detection (inlined _try_jump) ------
            live = False
            if rob and rob[0].result_cycle <= cycle:
                live = True
            else:
                wake = {no_event}
                for _k in bkeys:
                    if _k:
                        _w = _k[0]
                        if _w <= cycle:
                            live = True
                            break
                        if _w < wake:
                            wake = _w
            if not live:
                if waiting_branch is not None \\
                        or cycle < rename_blocked_until:
                    stall = 0
                elif len(rob) >= {config.rob_size}:
                    stall = 1
                else:
                    if pend_inst is None and not fe_exhausted:
                        inst = next(trace_iter, None)
                        if inst is None:
                            fe_exhausted = True
                        else:
                            pend_misp = False
                            if inst.op == OP_BRANCH:
                                fe_branches += 1
                                if resolve(inst.pc, inst.taken) \\
                                        != inst.taken:
                                    pend_misp = True
                                    fe_mispredicts += 1
                            pend_inst = inst
                    if pend_inst is None:
                        if not rob:
                            live = True
                        else:
                            stall = 3
                    elif pending_decision is None:
                        live = True
                    elif inflights[pending_decision[0]] \\
                            >= {cluster.max_inflight}:
                        stall = 2
                    else:
                        live = True
            if not live:
                # Parked memory ops are ignorable: nothing issues in a
                # dead window, so no release can fire before the next
                # live cycle.  A parked IMULDIV only matters at its
                # unit's release cycle - a horizon candidate below.
                for _ci in {cluster_range}:
{parked_live}
                    for _entry in readys[_ci]:
                        _u = _entry[1]
                        if _u.mem_index >= 0:
                            if {cluster.num_lsus}:
                                live = True
                                break
                        elif _u.inst.op in _FP:
                            if {cluster.num_fpus}:
                                live = True
                                break
                        elif {cluster.num_alus}:
{ready_alu}
                    if live:
                        break

            if live:
                # -- commit (inlined) ----------------------------------
                if rob:
                    _n = {config.commit_width}
                    while rob:
                        uop = rob[0]
                        if uop.result_cycle > cycle:
                            break
                        rob_popleft()
                        pdest = uop.pdest
                        if pdest is not None:
                            if pdest < {config.int_physical_registers}:
                                int_out[{sub['RET_INT']}] -= 1
                            else:
                                fp_out[{sub['RET_FP']}] -= 1
                        pold = uop.pold
                        if pold is not None:
                            if pold < {config.int_physical_registers}:
                                int_free[{sub['FREE_INT']}].append(pold)
                            else:
                                _local = (pold
                                          - {config.int_physical_registers})
                                fp_free[{sub['FREE_FP']}].append(_local)
                        if uop.inst.op == OP_STORE:
                            _word = store_by_seq.pop(uop.seq, None)
                            if _word is not None \\
                                    and store_get(_word) == uop.seq:
                                del store_words[_word]
                        inflights[uop.cluster] -= 1
                        committed += 1
                        _n -= 1
                        if not _n:
                            break

                # -- wake / select / execute (inlined) -----------------
                for _ci in {cluster_range}:
                    _keys = bkeys[_ci]
                    _r = readys[_ci]
                    if _keys and _keys[0] <= cycle:
                        _bk = buckets[_ci]
                        _pm = parked_mems[_ci]
                        _sc = schedulers[_ci]
                        _added = False
                        _ki = 0
                        _kn = len(_keys)
                        while _ki < _kn and _keys[_ki] <= cycle:
                            _bucket = _bk.pop(_keys[_ki])
                            for _e in _bucket:
                                _emi = _e[1].mem_index
                                if _emi >= 0:
                                    if _emi == issued_upto:
                                        _r.append(_e)
                                        _added = True
                                    else:
                                        _pm[_emi] = _e
                                        mo_parked[_emi] = _sc
                                else:
                                    _r.append(_e)
                                    _added = True
                            _ki += 1
                        del _keys[:_ki]
                        if _added:
                            _r.sort()
{unpark_muldiv}
                    if not _r:
                        continue
{pick_block}
                    for uop in _picked_uops:
                        # -- start execution (inlined) -----------------
                        inst = uop.inst
                        _op = inst.op
                        _lat = LAT[_op]
                        _mi = uop.mem_index
                        if _mi >= 0:
                            issued_upto = _mi + 1
                            _s2 = mo_parked.pop(issued_upto, None)
                            if _s2 is not None:
                                _c2 = _s2.cluster_id
                                insort(readys[_c2],
                                       parked_mems[_c2].pop(issued_upto))
                            _addr = inst.addr
                            if _op == OP_LOAD:
                                _fwd = store_get(_addr // {WORD_BYTES})
                                if _fwd is not None:
                                    _lat = {config.memory.l1.hit_latency}
                                    store_forwards += 1
                                else:
                                    # inlined L1 probe (MRU fast path)
                                    _line = _addr >> {l1_off}
                                    _tags = l1_sets[_line & {l1_mask}]
                                    _tag = _line >> {l1_setbits}
                                    if _tags and _tags[0] == _tag:
                                        l1_hits += 1
                                        _lat = {l1.hit_latency}
                                    else:
                                        try:
                                            _pos = _tags.index(_tag)
                                        except ValueError:
                                            _lat, _l2h = mem_miss(_addr,
                                                                  cycle)
                                            l1_misses += 1
                                            if not _l2h:
                                                l2_misses += 1
                                        else:
                                            del _tags[_pos]
                                            _tags.insert(0, _tag)
                                            l1_hits += 1
                                            _lat = {l1.hit_latency}
                                    mem_loads += 1
                                loads += 1
                            else:
                                _word = _addr // {WORD_BYTES}
                                store_words[_word] = uop.seq
                                store_by_seq[uop.seq] = _word
                                _line = _addr >> {l1_off}
                                _tags = l1_sets[_line & {l1_mask}]
                                _tag = _line >> {l1_setbits}
                                if _tags and _tags[0] == _tag:
                                    l1_hits += 1
                                else:
                                    try:
                                        _pos = _tags.index(_tag)
                                    except ValueError:
                                        _ml, _l2h = mem_miss(_addr, cycle)
                                        l1_misses += 1
                                        if not _l2h:
                                            l2_misses += 1
                                    else:
                                        del _tags[_pos]
                                        _tags.insert(0, _tag)
                                        l1_hits += 1
                                mem_stores += 1
                                stores += 1
                        uop.issue_cycle = cycle
                        _rc = cycle + _lat
                        uop.result_cycle = _rc
{muldiv_exec}
                        issued += 1
                        cluster_issued[_ci] += 1
                        pdest = uop.pdest
                        if pdest is not None:
                            reg_result[pdest] = _rc
                            _waiters = waiters_pop(pdest, None)
                            if _waiters:
                                _row = fwd_rows[_ci]
                                for _wt in _waiters:
                                    _wc = _wt.cluster
                                    if _wc == _ci:
                                        bypass_intra += 1
                                    else:
                                        bypass_inter += 1
                                    _usable = _rc + _row[_wc]
                                    _ec = _wt.earliest_issue
                                    if _usable > _ec:
                                        _ec = _usable
                                        _wt.earliest_issue = _usable
                                    _wo = _wt.waiting_operands - 1
                                    _wt.waiting_operands = _wo
                                    if not _wo:
                                        _bk2 = buckets[_wc]
                                        _b2 = _bk2.get(_ec)
                                        if _b2 is None:
                                            _bk2[_ec] = [(_wt.seq, _wt)]
                                            insort(bkeys[_wc], _ec)
                                        else:
                                            _b2.append((_wt.seq, _wt))
                        if uop.mispredicted:
                            rename_blocked_until = (
                                _rc + {config.mispredict_penalty})
                            if waiting_branch is uop:
                                waiting_branch = None

                # -- rename / dispatch (inlined) -----------------------
                _budget = {config.front_width}
                if waiting_branch is not None \\
                        or cycle < rename_blocked_until:
                    # Loop-invariant: a mispredicted rename breaks out
                    # immediately and the block-until cycle only moves in
                    # the execute stage, so the whole group stalls here.
                    stall_branch += _budget
                    _budget = 0
                while _budget:
                    if len(rob) >= {config.rob_size}:
                        stall_rob += _budget
                        break
                    inst = pend_inst
                    if inst is None:
                        if fe_exhausted:
                            break
                        inst = next(trace_iter, None)
                        if inst is None:
                            fe_exhausted = True
                            break
                        pend_misp = False
                        if inst.op == OP_BRANCH:
                            fe_branches += 1
                            if resolve(inst.pc, inst.taken) != inst.taken:
                                pend_misp = True
                                fe_mispredicts += 1
                        pend_inst = inst
                    if pending_decision is None:
{alloc_block}
                    cluster = pending_decision[0]
                    if inflights[cluster] >= {cluster.max_inflight}:
                        stall_cluster += _budget
                        break
                    dest = inst.dest
                    if dest is not None:
                        if dest < {config.int_logical_registers}:
                            _q = int_free[{sub['SUB']}]
                        else:
                            _q = fp_free[{sub['SUB']}]
                        if not _q:
                            reg_stalls += 1
{deadlock_block}
                    swapped = pending_decision[1]
                    pend_inst = None
                    delivered += 1
                    pending_decision = None
                    src1 = inst.src1
                    if src1 is None:
                        psrc1 = None
                    elif src1 < {config.int_logical_registers}:
                        psrc1 = int_map[src1]
                    else:
                        psrc1 = ({config.int_physical_registers}
                                 + fp_map[src1
                                          - {config.int_logical_registers}])
                    src2 = inst.src2
                    if src2 is None:
                        psrc2 = None
                    elif src2 < {config.int_logical_registers}:
                        psrc2 = int_map[src2]
                    else:
                        psrc2 = ({config.int_physical_registers}
                                 + fp_map[src2
                                          - {config.int_logical_registers}])
                    if dest is None:
                        pdest = None
                        pold = None
                    elif dest < {config.int_logical_registers}:
                        _local = _q.popleft()
                        pold = int_map[dest]
                        int_map[dest] = _local
                        int_out[{sub['SUB']}] += 1
                        pdest = _local
                    else:
                        _local = _q.popleft()
                        _dl = dest - {config.int_logical_registers}
                        pold = {config.int_physical_registers} + fp_map[_dl]
                        fp_map[_dl] = _local
                        fp_out[{sub['SUB']}] += 1
                        pdest = {config.int_physical_registers} + _local
                    renamed += 1
{deadlock_stats_sync}
                    seq = seq_counter
                    seq_counter = seq + 1
                    _op = inst.op
                    if _op == OP_LOAD or _op == OP_STORE:
                        mem_index = next_mem_index
                        next_mem_index = mem_index + 1
                    else:
                        mem_index = -1
                    misp = pend_misp
                    uop = new_uop(Uop)
                    uop.seq = seq
                    uop.inst = inst
                    uop.cluster = cluster
                    uop.swapped = swapped
                    uop.psrc1 = psrc1
                    uop.psrc2 = psrc2
                    uop.pdest = pdest
                    uop.pold = pold
                    uop.dispatch_cycle = cycle
                    uop.issue_cycle = {UNKNOWN_CYCLE}
                    uop.result_cycle = {UNKNOWN_CYCLE}
                    uop.mispredicted = misp
                    uop.mem_index = mem_index
                    if pdest is not None:
                        reg_result[pdest] = {UNKNOWN_CYCLE}
                        reg_cluster[pdest] = cluster
                    # -- wake-up computation (inlined) -----------------
                    _earliest = cycle + 1
                    _waiting = 0
                    if psrc1 is not None:
                        _rcy = reg_result[psrc1]
                        if _rcy == {UNKNOWN_CYCLE}:
                            _waiting = 1
                            _wl = waiters_get(psrc1)
                            if _wl is None:
                                reg_waiters[psrc1] = [uop]
                            else:
                                _wl.append(uop)
                        else:
                            _usable = (_rcy
                                       + fwd_rows[reg_cluster[psrc1]]
                                       [cluster])
                            if _usable > _earliest:
                                _earliest = _usable
                    if psrc2 is not None:
                        _rcy = reg_result[psrc2]
                        if _rcy == {UNKNOWN_CYCLE}:
                            _waiting += 1
                            _wl = waiters_get(psrc2)
                            if _wl is None:
                                reg_waiters[psrc2] = [uop]
                            else:
                                _wl.append(uop)
                        else:
                            _usable = (_rcy
                                       + fwd_rows[reg_cluster[psrc2]]
                                       [cluster])
                            if _usable > _earliest:
                                _earliest = _usable
                    uop.earliest_issue = _earliest
                    uop.waiting_operands = _waiting
                    if not _waiting:
                        _bk2 = buckets[cluster]
                        _b2 = _bk2.get(_earliest)
                        if _b2 is None:
                            _bk2[_earliest] = [(seq, uop)]
                            insort(bkeys[cluster], _earliest)
                        else:
                            _b2.append((seq, uop))
                    rob_append(uop)
                    inflights[cluster] += 1
                    dispatched += 1
                    cluster_allocated[cluster] += 1
                    if swapped:
                        swapped_forms += 1
                    bcounts[cluster] += 1
                    bfilled += 1
                    if bfilled >= bgroup:
                        _unb = (min(bcounts) < blow
                                or max(bcounts) > bhigh)
                        bt_total += 1
                        sg_total += 1
                        if _unb:
                            bt_unb += 1
                            sg_unb += 1
                        if bkeep:
                            bgroups.append(list(bcounts))
                        for _bi in {cluster_range}:
                            bcounts[_bi] = 0
                        bfilled = 0
                    if _op == OP_BRANCH:
                        branches += 1
                        if misp:
                            mispredictions += 1
                            waiting_branch = uop
                    _budget -= 1
                    if misp:
                        break

                cycles += 1
                cycle += 1
{tripped_check}
            else:
                # -- dead window: jump to the event horizon ------------
                horizon = wake
                if rob:
                    _rc = rob[0].result_cycle
                    if _rc < horizon:
                        horizon = _rc
                if cycle < rename_blocked_until < horizon:
                    horizon = rename_blocked_until
{muldiv_horizon}
                if horizon >= {no_event}:
                    raise DeadlockedPipeline(
                        "event horizon found no future event at cycle "
                        "%d (specialized gear: rename stalled, nothing "
                        "in flight can wake or commit)" % cycle)
                skipped = horizon - cycle
                if skipped > {progress_limit}:
                    raise DeadlockedPipeline(
                        "no commit possible for %d cycles at cycle %d "
                        "(specialized gear: stalled until the event "
                        "horizon at %d)" % (skipped, cycle, horizon))
                if stall == 0:
                    stall_branch += {config.front_width} * skipped
                elif stall == 1:
                    stall_rob += {config.front_width} * skipped
                elif stall == 2:
                    stall_cluster += {config.front_width} * skipped
                cycles += skipped
                cycle = horizon
                jumps += 1
                jump_skipped += skipped

            if committed != last_committed:
                last_committed = committed
                idle_events = 0
            else:
                idle_events += 1
                if idle_events > {progress_limit}:
                    raise DeadlockedPipeline(
                        "no instruction committed for %d pipeline "
                        "events at cycle %d" % (idle_events, cycle))
        return True
    finally:
        proc.cycle = cycle
        proc._seq = seq_counter
        proc._move_debt = move_debt
        proc._rename_blocked_until = rename_blocked_until
        proc._waiting_branch = waiting_branch
        proc._pending_decision = pending_decision
        proc.horizon_jumps = jumps
        proc.horizon_cycles_skipped = jump_skipped
        if pend_inst is None:
            frontend._pending = None
        else:
            frontend._pending = Fetched(pend_inst, pend_misp)
        frontend._exhausted = fe_exhausted
        frontend.branches = fe_branches
        frontend.mispredictions = fe_mispredicts
        frontend.delivered = delivered
        memory.loads = mem_loads
        memory.stores = mem_stores
        memory.l1.hits = l1_hits
{writeback_alloc}
        memorder._issued_upto = issued_upto
        memorder._next_index = next_mem_index
        renamer.renamed = renamed
        renamer.reg_stalls = reg_stalls
        for _ci in {cluster_range}:
            schedulers[_ci].inflight = inflights[_ci]
            schedulers[_ci]._pending_size = sum(
                map(len, buckets[_ci].values()))
        balance._filled = bfilled
        balance.groups_total = bt_total
        balance.groups_unbalanced = bt_unb
        stats.groups_total = sg_total
        stats.groups_unbalanced = sg_unb
        stats.cycles = cycles
        stats.committed = committed
        stats.dispatched = dispatched
        stats.issued = issued
        stats.branches = branches
        stats.mispredictions = mispredictions
        stats.loads = loads
        stats.stores = stores
        stats.store_forwards = store_forwards
        stats.bypass_edges_intra = bypass_intra
        stats.bypass_edges_inter = bypass_inter
        stats.l1_misses = l1_misses
        stats.l2_misses = l2_misses
        stats.stall_rob_full = stall_rob
        stats.stall_cluster_full = stall_cluster
        stats.stall_no_register = stall_noreg
        stats.stall_branch_penalty = stall_branch
        stats.stall_deadlock_moves = stall_moves
        stats.swapped_forms = swapped_forms
'''
    return src


def build_specialized_runner(processor) -> Optional[Callable[[int], bool]]:
    """Compile the specialized stepper for ``processor``; None if blocked.

    The returned callable has the signature ``runner(committed_target)
    -> bool``: True when the target was reached (or the trace drained)
    inside the specialized envelope, False when a guard tripped and the
    caller must fall back to the generic gears (all machine state has
    already been written back).
    """
    from repro.core.processor import DeadlockedPipeline
    from repro.frontend.fetch import FetchedInstruction

    if specialization_blockers(processor):
        return None
    source = generate_stepper_source(processor.config)
    code = _CODE_CACHE.get(source)
    if code is None:
        code = compile(source,
                       generated_source_filename(processor.config), "exec")
        _CODE_CACHE[source] = code
    namespace = {
        "insort": bisect.insort,
        "DeadlockedPipeline": DeadlockedPipeline,
        "Uop": InFlightUop,
        "new_uop": InFlightUop.__new__,
        "Fetched": FetchedInstruction,
        "_FP": frozenset(FP_CLASSES),
        "OP_LOAD": OpClass.LOAD,
        "OP_STORE": OpClass.STORE,
        "OP_BRANCH": OpClass.BRANCH,
        "OP_IMULDIV": OpClass.IMULDIV,
        "FWD": processor._forward_table,
    }
    exec(code, namespace)
    run = namespace[SPECIALIZED_FUNC_NAME]

    def runner(committed_target: int, _run=run, _proc=processor) -> bool:
        return _run(_proc, committed_target)

    return runner
