"""The cycle-level clustered out-of-order processor model.

This is the simulator behind section 5 of the paper: an 8-way machine made
of four identical 2-way clusters (2 ALUs + 1 load/store unit + 1 FP unit
each, up to 56 in-flight instructions per cluster), with

* an idealised front end delivering 8 instructions/cycle to rename
  (:mod:`repro.frontend.fetch`), realistic 2Bc-gskew direction prediction
  and a *minimum misprediction penalty* per configuration (17 cycles for
  the conventional machine, 16 with write specialization alone, 16/18 for
  WSRS renaming implementations 1/2);
* cluster allocation **before** renaming (round-robin, RM or RC -
  :mod:`repro.allocation.policies`), with the allocation decision made
  once per instruction and kept across stall cycles;
* register renaming with optional write specialization
  (:mod:`repro.rename.renamer`), separate integer/FP physical files;
* per-cluster wake-up/select with oldest-first selection
  (:mod:`repro.core.issue_queue`), free intra-cluster fast-forwarding and
  a one-cycle inter-cluster forwarding delay (configurable - the
  fast-forwarding policies of section 4.3.1);
* Table 2 latencies, in-order address computation with conflict-checked
  load bypassing (:mod:`repro.core.lsq`), and the Table 3 memory
  hierarchy (:mod:`repro.memory.hierarchy`);
* in-order commit (8 wide) releasing previous physical mappings.

Wrong-path instructions are not simulated: a mispredicted branch stops
instruction delivery until ``resolution_cycle + minimum_penalty``, which is
the paper's own level of abstraction for the front end.

The main loop has three gears.  The reference stepper
(:meth:`Processor.step`) advances one cycle at a time; the *event-horizon*
fast path (``fast_path=True``, the default) detects cycles where the
machine provably does nothing - commit idle, no scheduler entry awake,
rename stalled on a branch-penalty window, a full ROB/cluster, or an
exhausted trace - and jumps ``cycle`` straight to the next event (earliest
scheduler wake-up, the ROB head's completion, the rename-unblock cycle, a
multiply/divide unit release), bulk-charging the per-cycle stall counters
for the skipped range.  The third gear (``gear="specialized"``,
:mod:`repro.core.specialize`) compiles a run loop specialized to the
frozen configuration - constants baked in, per-cycle dispatch flattened,
the event-horizon jump inlined - and falls back to the generic gears
mid-run when a guard condition (a deadlock-breaking move) leaves the
specialized envelope.  Every statistic is bit-identical across all three
gears; see ``docs/architecture.md`` ("Performance") for the argument.

Typical use::

    from repro.config import wsrs_rc
    from repro.core.processor import Processor
    from repro.trace.profiles import spec_trace

    proc = Processor(wsrs_rc(512), spec_trace("gzip", 200_000))
    stats = proc.run(warmup=50_000, measure=100_000)
    print(stats.ipc, stats.unbalancing_degree)
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.allocation.policies import make_allocator
from repro.config import MachineConfig
from repro.core.issue_queue import ClusterScheduler
from repro.core.lsq import MemoryOrderQueue
from repro.core.stats import SimulationStats
from repro.core.uop import UNKNOWN_CYCLE, InFlightUop
from repro.errors import ConfigError, ReproError
from repro.frontend.fetch import FrontEnd
from repro.frontend.predictors import BranchPredictor, make_predictor
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.model import FP_CLASSES, OpClass, TraceInstruction

#: Abort if the machine makes no forward progress for this many pipeline
#: events (steps or event-horizon jumps; a reference-stepper event is one
#: cycle, so the threshold is unchanged for the per-cycle core).
_PROGRESS_LIMIT = 100_000

#: Horizon sentinel: any candidate event at or beyond this cycle is "never"
#: (matches the :data:`UNKNOWN_CYCLE` result-cycle sentinel of unissued
#: micro-ops so unissued ROB heads drop out of the min naturally).
_NO_EVENT = UNKNOWN_CYCLE


class DeadlockedPipeline(ReproError):
    """The simulated machine stopped making forward progress."""


class Processor:
    """One simulated machine instance bound to one trace."""

    def __init__(
        self,
        config: MachineConfig,
        trace: Iterable[TraceInstruction],
        predictor: Optional[BranchPredictor] = None,
        check_invariants: bool = True,
        sanitize: Optional[bool] = None,
        fast_path: bool = True,
        observe: bool = False,
        tracer=None,
        gear: Optional[str] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.check_invariants = check_invariants
        # Gear selection: ``gear`` is the explicit three-speed knob
        # ("reference" | "horizon" | "specialized"); when omitted the
        # legacy ``fast_path`` flag picks between the first two.
        if gear is not None:
            from repro.core.specialize import GEARS

            if gear not in GEARS:
                raise ConfigError(
                    f"unknown gear {gear!r}; expected one of {GEARS}")
            fast_path = gear != "reference"
        self.requested_gear = gear
        # Implementation-1 renaming stages/recycles registers every cycle
        # even when nothing renames, so its free-list state is not
        # invariant across a dead-cycle window: the event horizon only
        # engages for the cycle-invariant implementation 2.
        self.fast_path = fast_path and config.rename_impl != 1
        #: Event-horizon instrumentation (diagnostics only - deliberately
        #: not part of :class:`SimulationStats`, whose counters stay
        #: bit-identical between the two cores).
        self.horizon_jumps = 0
        self.horizon_cycles_skipped = 0

        self.frontend = FrontEnd(
            trace, predictor or make_predictor("2bcgskew"))
        from repro.rename.renamer import Renamer

        self.renamer = Renamer(config)
        self.allocator = make_allocator(
            config.allocation_policy, config.num_clusters, config.seed)
        if config.uses_read_specialization and not self.allocator.wsrs_legal:
            raise ConfigError(
                f"policy {config.allocation_policy!r} ignores the WSRS "
                f"read constraints; use an RS-aware policy (RM, RC, ...)")

        self.memory = MemoryHierarchy(config.memory)
        self.memorder = MemoryOrderQueue()
        cluster = config.cluster
        self.schedulers = [
            ClusterScheduler(i, cluster.issue_width, cluster.num_alus,
                             cluster.num_lsus, cluster.num_fpus,
                             memorder=self.memorder)
            for i in range(config.num_clusters)
        ]
        self.stats = SimulationStats(config.num_clusters)

        num_regs = self.renamer.total_global_registers
        self._reg_result: List[int] = [0] * num_regs
        self._reg_cluster: List[int] = [-1] * num_regs
        self._reg_waiters: Dict[int, List[InFlightUop]] = {}

        self._rob: Deque[InFlightUop] = deque()
        self.cycle = 0
        self._seq = 0
        # Deadlock-move accounting: front-end slots still owed by moves
        # that exceeded an earlier cycle's budget, and the renamer's
        # cumulative move count at the last measurement reset (so the
        # measured slice reports only its own moves).
        self._move_debt = 0
        self._measured_moves_base = 0
        self._rename_blocked_until = 0
        self._waiting_branch: Optional[InFlightUop] = None
        self._pending_decision = None
        self._muldiv_busy_until = [0] * config.num_clusters
        self._latencies = dict(config.latencies)
        # forward_delay, precomputed into a num_clusters x num_clusters
        # table (row = producer cluster): the wake-up and bypass hot
        # loops index it instead of re-deriving the policy per operand.
        self._forward_table: List[List[int]] = [
            [config.forward_delay(producer, consumer)
             for consumer in range(config.num_clusters)]
            for producer in range(config.num_clusters)
        ]
        # Whether the multiply/divide unit is a trackable hazard at all
        # (private pipelined units never reject an IMULDIV, so the
        # schedulers run with an unlimited quota).
        self._muldiv_vetoed = (not config.pipelined_muldiv
                               or config.shared_muldiv)
        self._wsrs_mapping = None
        if config.uses_read_specialization:
            from repro.extensions.general_wsrs import make_mapping

            self._wsrs_mapping = make_mapping(config.num_clusters)
        self._int_phys = config.int_physical_registers
        self._int_subset = config.int_subset_size
        self._fp_subset = config.fp_subset_size

        self.stats.record_run_metadata(config.allocation_policy,
                                       self.allocator.seed)

        from repro.verify.sanitizer import (
            PipelineSanitizer,
            sanitize_from_env,
        )

        self.sanitizer: Optional[PipelineSanitizer] = None
        if sanitize_from_env(sanitize):
            from repro.verify.rules import verify_config

            verify_config(config)
            self.sanitizer = PipelineSanitizer(config, self.renamer)

        # Observability (repro.obs): CPI-stack cycle accounting, the
        # counter/histogram registry and the optional structured event
        # trace.  A pure reader - attached last so it sees the fully
        # built machine; None costs one attribute test per hook site.
        self.obs = None
        if observe or tracer is not None:
            from repro.obs.observer import Observer

            self.obs = Observer(self, tracer=tracer)

        # Third gear: the config-specialized stepper (repro.core.
        # specialize).  Built last so its entry guards see the fully
        # assembled machine; blocked processors (sanitized, observed,
        # rename_impl=1, paranoid WSRS checking) silently keep the
        # generic gears - the ``gear`` attribute reports what actually
        # engaged.  ``despecializations`` counts mid-run guard trips.
        self._specialized_run = None
        self.despecializations = 0
        if gear == "specialized":
            from repro.core.specialize import build_specialized_runner

            self._specialized_run = build_specialized_runner(self)
        if self._specialized_run is not None:
            self.gear = "specialized"
        else:
            self.gear = "horizon" if self.fast_path else "reference"

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self, measure: int, warmup: int = 0) -> SimulationStats:
        """Simulate ``warmup`` then ``measure`` committed instructions.

        Warm-up trains the caches and the branch predictor without
        counting; statistics cover only the measured slice, as in the
        paper's methodology.  The run ends early (without error) if the
        trace is exhausted.
        """
        if warmup:
            self._run_until(self.stats.committed + warmup)
            self.stats.reset_measurement()
            self._measured_moves_base = self.renamer.deadlock_moves
            if self.obs is not None:
                self.obs.on_measurement_reset()
        self._run_until(self.stats.committed + measure)
        return self.stats

    def _run_until(self, committed_target: int) -> None:
        # Forward progress is measured in pipeline *events* (steps or
        # jumps), not raw cycles: one event-horizon jump can legally
        # advance the clock by hundreds of cycles (an L2 miss under a
        # full ROB), which a raw-cycle watchdog would misread as a hang.
        # On the reference stepper every event is one cycle, so the
        # threshold is exactly the historical cycle-based one.
        runner = self._specialized_run
        if runner is not None:
            if runner(committed_target):
                return
            # A specialization guard tripped (deadlock-breaking move):
            # the specialized stepper finished the trip cycle with
            # reference semantics and wrote all state back, so the
            # generic gears resume mid-run without divergence.  The
            # despecialization is permanent for this processor.
            self._specialized_run = None
            self.despecializations += 1
            self.gear = "horizon" if self.fast_path else "reference"
        idle_events = 0
        last_committed = self.stats.committed
        fast = self.fast_path
        while self.stats.committed < committed_target:
            if self.frontend.exhausted and not self._rob:
                break
            if not (fast and self._try_jump()):
                self.step()
            if self.stats.committed != last_committed:
                last_committed = self.stats.committed
                idle_events = 0
            else:
                idle_events += 1
                if idle_events > _PROGRESS_LIMIT:
                    raise DeadlockedPipeline(
                        f"no instruction committed for {idle_events} "
                        f"pipeline events at cycle {self.cycle}")

    def step(self) -> None:
        """Advance the machine by one cycle."""
        cycle = self.cycle
        self._commit(cycle)
        self._issue(cycle)
        self.renamer.begin_cycle()
        self._rename_and_dispatch(cycle)
        self.renamer.end_cycle()
        if self.sanitizer is not None:
            self.sanitizer.on_cycle_end(cycle)
        if self.obs is not None:
            self.obs.on_cycle_end(cycle)
        self.stats.cycles += 1
        self.cycle = cycle + 1

    # ------------------------------------------------------------------
    # event-horizon fast path
    # ------------------------------------------------------------------

    def _try_jump(self) -> bool:
        """Skip ahead to the next event when this cycle provably idles.

        A cycle is *dead* when every stage is a no-op apart from charging
        one stall counter: nothing commits (ROB empty or head incomplete),
        no scheduler entry wakes or can issue (entries already awake are
        tolerated when they are provably vetoed for the whole window),
        and rename is stalled for a reason that cannot clear before an
        event - a branch-penalty window, a full ROB, a full cluster (with
        the allocation decision already drawn), or an exhausted trace.  The machine state is then
        frozen until the *event horizon*: the earliest of the schedulers'
        next wake-ups, the ROB head's completion, the rename-unblock
        cycle and the multiply/divide unit releases.  Jumping there in
        one step and bulk-charging ``skipped`` cycles of the same stall
        counter reproduces the reference stepper's statistics bit for
        bit.

        Returns True when a jump happened (the caller skips ``step()``).
        Cycles whose rename outcome depends on mutable machinery - an
        allocation decision still to be drawn (an RNG consumer), a
        ``can_rename`` consultation (which may inject deadlock moves), or
        outstanding move debt - are never skipped.
        """
        cycle = self.cycle
        rob = self._rob
        if rob and rob[0].result_cycle <= cycle:
            return False  # commit work this cycle
        if self._move_debt:
            return False  # debt settling mutates counters cycle by cycle
        wake = _NO_EVENT
        for scheduler in self.schedulers:
            when = scheduler.next_wake_cycle()
            if when is not None:
                if when <= cycle:
                    return False  # wake-up work this cycle
                if when < wake:
                    wake = when
        config = self.config
        stats = self.stats

        # Mirror _rename_and_dispatch's stall priority exactly, including
        # its fetch behaviour: the branch/ROB stalls return before peek(),
        # so the detector must not fetch in those states either.
        if self._waiting_branch is not None \
                or cycle < self._rename_blocked_until:
            stall = "branch"
        elif len(rob) >= config.rob_size:
            stall = "rob"
        else:
            fetched = self.frontend.peek()  # the fetch rename would do
            if fetched is None:
                if not rob:
                    # End-of-trace drain complete: this is termination,
                    # not a dead window - step once so the run loop sees
                    # the exhausted front end and stops.
                    return False
                stall = "exhausted"
            elif self._pending_decision is None:
                return False  # allocation decision (RNG) due this cycle
            elif (self.schedulers[self._pending_decision[0]].inflight
                  >= config.cluster.max_inflight):
                stall = "cluster"
            else:
                return False  # rename can proceed (or consults can_rename)

        # Ready (already-woken) entries only force a live cycle when one
        # of them can actually issue.  Memory operations blocked by the
        # in-order address-computation rule are *parked* (never in the
        # ready list), and since nothing issues during a dead window,
        # ``issued_memory_ops`` is frozen and no release can fire for
        # every skipped cycle - so parked memory ops are ignorable here.
        # A multiply/divide left in the ready list by an issue-width
        # cutoff (or parked on a busy unit) only becomes issuable at the
        # unit's release cycle, which is already an event-horizon
        # candidate.  Nothing in the skipped range would mutate state:
        # the reference stepper's select over a dead window picks
        # nothing and parks nothing new.
        mem_next = self.memorder.issued_memory_ops
        muldiv_vetoed = self._muldiv_vetoed
        busy_until = self._muldiv_busy_until
        for scheduler in self.schedulers:
            lsus = scheduler.num_lsus
            fpus = scheduler.num_fpus
            alus = scheduler.num_alus
            if alus and scheduler._parked_muldiv and \
                    busy_until[self._muldiv_unit(scheduler.cluster_id)] \
                    <= cycle:
                return False  # unit free: a parked IMULDIV un-parks
            for _seq, uop in scheduler._ready:
                if uop.mem_index >= 0:
                    if lsus and uop.mem_index == mem_next:
                        return False  # head of memory order: issuable
                elif uop.inst.op in FP_CLASSES:
                    if fpus:
                        return False  # an FP unit will take it
                elif alus:
                    if muldiv_vetoed and uop.inst.op is OpClass.IMULDIV:
                        if busy_until[self._muldiv_unit(uop.cluster)] \
                                <= cycle:
                            return False  # unit free: issuable
                        # Busy unit: held until release (in horizon).
                    else:
                        return False  # plain ALU op: issuable

        horizon = wake
        if rob and rob[0].result_cycle < horizon:
            horizon = rob[0].result_cycle
        if cycle < self._rename_blocked_until < horizon:
            horizon = self._rename_blocked_until
        for busy in self._muldiv_busy_until:
            if cycle < busy < horizon:
                horizon = busy
        if horizon >= _NO_EVENT:
            # Nothing in flight will ever wake, complete or unblock: the
            # reference stepper would spin _PROGRESS_LIMIT dead cycles
            # and then raise; the fast path can prove it immediately.
            raise DeadlockedPipeline(
                f"event horizon found no future event at cycle {cycle} "
                f"(rename stalled on {stall}, nothing in flight can "
                f"wake or commit)")

        skipped = horizon - cycle
        if skipped > _PROGRESS_LIMIT:
            # The reference stepper would burn its whole progress budget
            # inside this window and give up; mirror its guard rather
            # than leaping a wedged machine.
            raise DeadlockedPipeline(
                f"no commit possible for {skipped} cycles at cycle "
                f"{cycle} (rename stalled on {stall} until the event "
                f"horizon at {horizon})")
        width = config.front_width
        if stall == "branch":
            stats.stall_branch_penalty += width * skipped
        elif stall == "rob":
            stats.stall_rob_full += width * skipped
        elif stall == "cluster":
            stats.stall_cluster_full += width * skipped
        if self.sanitizer is not None:
            self.sanitizer.on_cycle_skip(cycle, horizon)
        if self.obs is not None:
            self.obs.on_cycle_skip(cycle, horizon, stall)
        stats.cycles += skipped
        self.cycle = horizon
        self.horizon_jumps += 1
        self.horizon_cycles_skipped += skipped
        return True

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit(self, cycle: int) -> None:
        rob = self._rob
        renamer = self.renamer
        stats = self.stats
        sanitizer = self.sanitizer
        obs = self.obs
        budget = self.config.commit_width
        while budget and rob:
            uop = rob[0]
            if uop.result_cycle > cycle:
                break
            rob.popleft()
            if sanitizer is not None:
                sanitizer.on_commit(uop, cycle)
            if obs is not None:
                obs.on_commit(uop, cycle)
            if uop.pdest is not None:
                renamer.retire_write(uop.pdest)
            if uop.pold is not None:
                renamer.commit_free(uop.pold)
            if uop.inst.is_store:
                self.memorder.commit_store(uop.seq)
            self.schedulers[uop.cluster].inflight -= 1
            stats.committed += 1
            budget -= 1

    # ------------------------------------------------------------------
    # issue / execute
    # ------------------------------------------------------------------

    def _muldiv_unit(self, cluster: int) -> int:
        """Index of the multiply/divide unit serving ``cluster``.

        Section 4.1: as an alternative to replicating dividers on every
        cluster, "a divider can be shared among two adjacent clusters"
        with static arbitration; ``shared_muldiv`` models that sharing.
        """
        if self.config.shared_muldiv:
            return cluster // 2
        return cluster

    def _issue(self, cycle: int) -> None:
        # Memory-order hazards are handled entirely by parking (the
        # schedulers only ever hold the memory-order head in their ready
        # lists); the multiply/divide hazard reaches select as a quota.
        # An IMULDIV issued on cluster i raises the unit's busy_until
        # before cluster i+1 selects, so a shared pair arbitrates
        # in-cycle through the quota alone - no per-cycle claim set.
        tracked = self._muldiv_vetoed
        busy_until = self._muldiv_busy_until
        start = self._start_execution
        for scheduler in self.schedulers:
            if scheduler.is_empty():
                continue
            if tracked:
                unit = self._muldiv_unit(scheduler.cluster_id)
                quota = 1 if busy_until[unit] <= cycle else 0
            else:
                quota = None
            for uop in scheduler.select(cycle, quota):
                start(uop, cycle)

    def _start_execution(self, uop: InFlightUop, cycle: int) -> None:
        inst = uop.inst
        stats = self.stats
        latency = self._latencies[inst.op]

        if inst.is_load:
            forwarded_from = self.memorder.issue_load(inst.addr,
                                                      uop.mem_index)
            if forwarded_from is not None:
                latency = self.config.memory.l1.hit_latency
                stats.store_forwards += 1
            else:
                result = self.memory.access(inst.addr, cycle)
                latency = result.latency
                if not result.l1_hit:
                    stats.l1_misses += 1
                    if not result.l2_hit:
                        stats.l2_misses += 1
            stats.loads += 1
        elif inst.is_store:
            self.memorder.issue_store(uop.seq, inst.addr, uop.mem_index)
            result = self.memory.access(inst.addr, cycle, is_store=True)
            if not result.l1_hit:
                stats.l1_misses += 1
                if not result.l2_hit:
                    stats.l2_misses += 1
            stats.stores += 1

        uop.issue_cycle = cycle
        result_cycle = cycle + latency
        uop.result_cycle = result_cycle
        if self.sanitizer is not None:
            self.sanitizer.on_issue(uop, cycle)
        if self.obs is not None:
            self.obs.on_issue(uop, cycle)
        if inst.op == OpClass.IMULDIV:
            if not self.config.pipelined_muldiv:
                # non-pipelined: the unit is busy for the whole operation
                self._muldiv_busy_until[self._muldiv_unit(uop.cluster)] = \
                    result_cycle
            elif self.config.shared_muldiv:
                # pipelined but shared: the pair's unit accepts one
                # operation per cycle
                self._muldiv_busy_until[self._muldiv_unit(uop.cluster)] = \
                    cycle + 1
        stats.issued += 1
        stats.cluster_issued[uop.cluster] += 1

        pdest = uop.pdest
        if pdest is not None:
            self._reg_result[pdest] = result_cycle
            waiters = self._reg_waiters.pop(pdest, None)
            if waiters:
                producer_cluster = uop.cluster
                delay_row = self._forward_table[producer_cluster]
                for waiter in waiters:
                    if waiter.cluster == producer_cluster:
                        stats.bypass_edges_intra += 1
                    else:
                        stats.bypass_edges_inter += 1
                    usable = result_cycle + delay_row[waiter.cluster]
                    if usable > waiter.earliest_issue:
                        waiter.earliest_issue = usable
                    waiter.waiting_operands -= 1
                    if not waiter.waiting_operands:
                        self.schedulers[waiter.cluster].enqueue(
                            waiter, waiter.earliest_issue)

        if uop.mispredicted:
            self._rename_blocked_until = (result_cycle
                                          + self.config.mispredict_penalty)
            if self._waiting_branch is uop:
                self._waiting_branch = None

    # ------------------------------------------------------------------
    # rename / dispatch
    # ------------------------------------------------------------------

    def _rename_and_dispatch(self, cycle: int) -> None:
        stats = self.stats
        config = self.config
        renamer = self.renamer
        rob = self._rob
        schedulers = self.schedulers
        subset_of = renamer.subset_of_logical
        cap = config.cluster.max_inflight
        budget = config.front_width

        # Deadlock-breaking moves that overflowed an earlier cycle's
        # budget still owe front-end slots; settle the debt first.
        if self._move_debt:
            paid = min(budget, self._move_debt)
            self._move_debt -= paid
            budget -= paid
            stats.stall_deadlock_moves += paid
            if not budget:
                return

        while budget:
            if self._waiting_branch is not None \
                    or cycle < self._rename_blocked_until:
                stats.stall_branch_penalty += budget
                return
            if len(rob) >= config.rob_size:
                stats.stall_rob_full += budget
                return
            fetched = self.frontend.peek()
            if fetched is None:
                return
            inst = fetched.inst

            # The allocation decision is made once and survives stall
            # retries (a re-draw would quietly rebalance the workload).
            if self._pending_decision is None:
                occupancy = [s.inflight for s in schedulers]
                self._pending_decision = self.allocator.allocate(
                    inst, subset_of, occupancy)
            cluster, swapped = self._pending_decision

            if schedulers[cluster].inflight >= cap:
                stats.stall_cluster_full += budget
                return
            moves_before = renamer.deadlock_moves
            if not renamer.can_rename(inst.dest, cluster):
                stats.stall_no_register += budget
                return
            # Deadlock-breaking moves consume front-end slots.  Charge as
            # many as this cycle can absorb (leaving one slot for the
            # instruction that triggered them); the excess carries into
            # the next cycle's budget as debt.
            moves = renamer.deadlock_moves - moves_before
            if moves:
                charged = min(budget - 1, moves)
                budget -= charged
                self._move_debt += moves - charged
                stats.stall_deadlock_moves += charged

            self.frontend.pop()
            self._pending_decision = None
            psrc1, psrc2, pdest, pold = renamer.rename(inst, cluster)
            stats.deadlock_moves = (renamer.deadlock_moves
                                    - self._measured_moves_base)

            seq = self._seq
            self._seq = seq + 1
            mem_index = (self.memorder.register()
                         if inst.is_memory else -1)
            uop = InFlightUop(
                seq, inst, cluster, swapped, psrc1, psrc2, pdest, pold,
                dispatch_cycle=cycle, mispredicted=fetched.mispredicted,
                mem_index=mem_index)

            if pdest is not None:
                self._reg_result[pdest] = UNKNOWN_CYCLE
                self._reg_cluster[pdest] = cluster

            if self.sanitizer is not None:
                self.sanitizer.on_dispatch(uop, cycle)
            if self.obs is not None:
                self.obs.on_dispatch(uop, cycle)
            self._compute_wakeup(uop, cycle)
            if self.check_invariants and config.uses_read_specialization:
                self._check_read_legality(uop)

            rob.append(uop)
            schedulers[cluster].inflight += 1
            stats.dispatched += 1
            stats.record_allocation(cluster, swapped)
            if inst.is_branch:
                stats.branches += 1
                if fetched.mispredicted:
                    stats.mispredictions += 1
                    self._waiting_branch = uop
            budget -= 1
            if fetched.mispredicted:
                return  # nothing younger is delivered until resolution

    def _compute_wakeup(self, uop: InFlightUop, cycle: int) -> None:
        """Fill in the earliest issue cycle or register operand waiters."""
        reg_result = self._reg_result
        reg_cluster = self._reg_cluster
        forward_table = self._forward_table
        consumer = uop.cluster
        earliest = cycle + 1
        waiting = 0
        for psrc in (uop.psrc1, uop.psrc2):
            if psrc is None:
                continue
            result_cycle = reg_result[psrc]
            if result_cycle == UNKNOWN_CYCLE:
                waiting += 1
                self._reg_waiters.setdefault(psrc, []).append(uop)
            else:
                usable = (result_cycle
                          + forward_table[reg_cluster[psrc]][consumer])
                if usable > earliest:
                    earliest = usable
        uop.earliest_issue = earliest
        uop.waiting_operands = waiting
        if not waiting:
            self.schedulers[uop.cluster].enqueue(uop, earliest)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def _subset_of_physical(self, preg: int) -> int:
        if preg < self._int_phys:
            return preg // self._int_subset
        return (preg - self._int_phys) // self._fp_subset

    def _check_read_legality(self, uop: InFlightUop) -> None:
        """Assert the WSRS read/write constraints.

        For the 4-cluster machine this is Figure 3's rule (the first
        operand port of cluster ``C(f, s)`` only reads subsets with the
        same top/bottom bit ``f``, the second port only subsets with the
        same left/right bit ``s``); other cluster counts check against the
        generalised mapping of :mod:`repro.extensions.general_wsrs`.
        """
        first = uop.first_port_operand
        second = uop.second_port_operand
        cluster = uop.cluster
        first_subset = (self._subset_of_physical(first)
                        if first is not None else None)
        second_subset = (self._subset_of_physical(second)
                         if second is not None else None)
        if not self._wsrs_mapping.legal(cluster, first_subset,
                                        second_subset):
            raise ReproError(
                f"WSRS violation: uop #{uop.seq} reads subsets "
                f"({first_subset}, {second_subset}) on cluster {cluster}")
        if uop.pdest is not None \
                and self._subset_of_physical(uop.pdest) != cluster:
            raise ReproError(
                f"write-specialization violation: uop #{uop.seq} result "
                f"in subset {self._subset_of_physical(uop.pdest)} from "
                f"cluster {cluster}")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def rob_occupancy(self) -> int:
        return len(self._rob)

    @property
    def rob_head(self) -> Optional[InFlightUop]:
        """The oldest in-flight micro-op (None when the window is empty)."""
        return self._rob[0] if self._rob else None

    def cluster_occupancies(self) -> List[int]:
        return [scheduler.inflight for scheduler in self.schedulers]


def simulate(
    config: MachineConfig,
    trace: Iterable[TraceInstruction],
    measure: int,
    warmup: int = 0,
    predictor: Optional[BranchPredictor] = None,
    check_invariants: bool = True,
    sanitize: Optional[bool] = None,
    fast_path: bool = True,
    observe: bool = False,
    tracer=None,
    gear: Optional[str] = None,
) -> SimulationStats:
    """One-call convenience wrapper around :class:`Processor`."""
    processor = Processor(config, trace, predictor=predictor,
                          check_invariants=check_invariants,
                          sanitize=sanitize, fast_path=fast_path,
                          observe=observe, tracer=tracer, gear=gear)
    return processor.run(measure=measure, warmup=warmup)
