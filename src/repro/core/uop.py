"""In-flight micro-operation record.

One :class:`InFlightUop` is created at rename/dispatch for every trace
instruction and lives until commit.  It carries the renamed (physical)
operands, the allocation decision (cluster and operand form), and the
timing milestones the pipeline fills in.
"""

from __future__ import annotations

from typing import Optional

from repro.trace.model import TraceInstruction

#: Sentinel "not yet known" cycle (comparisons stay cheap with a huge int).
UNKNOWN_CYCLE = 1 << 60


class InFlightUop:
    """A renamed instruction in flight between dispatch and commit."""

    __slots__ = (
        "seq", "inst", "cluster", "swapped",
        "psrc1", "psrc2", "pdest", "pold",
        "dispatch_cycle", "issue_cycle", "result_cycle",
        "mispredicted", "mem_index", "waiting_operands", "earliest_issue",
    )

    def __init__(
        self,
        seq: int,
        inst: TraceInstruction,
        cluster: int,
        swapped: bool,
        psrc1: Optional[int],
        psrc2: Optional[int],
        pdest: Optional[int],
        pold: Optional[int],
        dispatch_cycle: int,
        mispredicted: bool = False,
        mem_index: int = -1,
    ) -> None:
        self.seq = seq
        self.inst = inst
        self.cluster = cluster
        self.swapped = swapped
        self.psrc1 = psrc1
        self.psrc2 = psrc2
        self.pdest = pdest
        self.pold = pold
        self.dispatch_cycle = dispatch_cycle
        self.issue_cycle = UNKNOWN_CYCLE
        self.result_cycle = UNKNOWN_CYCLE
        self.mispredicted = mispredicted
        self.mem_index = mem_index
        self.waiting_operands = 0
        self.earliest_issue = dispatch_cycle + 1

    @property
    def issued(self) -> bool:
        return self.issue_cycle != UNKNOWN_CYCLE

    def completed_by(self, cycle: int) -> bool:
        """Whether the result is available at ``cycle`` (commit check)."""
        return self.result_cycle <= cycle

    @property
    def first_port_operand(self) -> Optional[int]:
        """Physical register feeding the first (left) operand port."""
        return self.psrc2 if self.swapped else self.psrc1

    @property
    def second_port_operand(self) -> Optional[int]:
        """Physical register feeding the second (right) operand port."""
        return self.psrc1 if self.swapped else self.psrc2

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<uop #{self.seq} {self.inst.op.name} C{self.cluster}"
                f"{' swapped' if self.swapped else ''}"
                f" d={self.pdest} s=({self.psrc1},{self.psrc2})>")
