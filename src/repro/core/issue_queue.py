"""Per-cluster wake-up and select machinery (event-driven).

Each cluster owns a :class:`ClusterScheduler`.  Dispatched micro-ops wait
in a *calendar queue* on the pending side: a dict mapping wake-up cycle
(the max over operands of producer-result cycle plus the inter-cluster
forwarding delay) to the list of micro-ops waking that cycle, plus a
sorted key list whose head feeds :meth:`next_wake_cycle` for the horizon
gear.  Bulk wakes drain whole buckets, O(woken), with no heapify storms.

Woken entries land in a *ready list* sorted by age (sequence number).
Select scans it in place: micro-ops that lose selection to a structural
hazard simply stay put and are re-scanned in identical seq order next
cycle - no pop/re-push round trip.  This mirrors an oldest-first select
tree.

Hazards that used to be polled through a per-cycle ``veto`` predicate
are now *parked* and released on the state transition that clears them:

* a memory micro-op whose address cannot yet be computed (the in-order
  address rule, :mod:`repro.core.lsq`) parks on a per-mem-index wait
  list; :class:`~repro.core.lsq.MemoryOrderQueue` releases it the moment
  the blocking older memory op issues.  At most one memory micro-op (the
  current memory-order head) is ever in the ready list.
* an IMULDIV micro-op that finds its (shared or non-pipelined)
  multiply/divide unit busy parks on a per-cluster list and re-enters
  the ready list, by age, once the unit's ``busy_until`` has passed.

Both mechanisms run O(transitions) instead of O(blocked x cycles).

The *timing* semantics of wake-up here are exactly the paper's: a
micro-op's operand becomes usable on cluster ``c`` at
``producer.result_cycle + forward_delay(producer_cluster, c)``, so a
single-cycle producer feeds a same-cluster consumer back-to-back, while a
cross-cluster consumer loses one cycle (the ``intra`` fast-forwarding
policy; section 4.3.1's other policies change ``forward_delay``).
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.uop import InFlightUop
from repro.trace.model import FP_CLASSES, MEMORY_CLASSES, OpClass

if TYPE_CHECKING:  # avoids an import cycle at runtime
    from repro.core.lsq import MemoryOrderQueue


class ClusterScheduler:
    """Wake-up/select state for one cluster."""

    def __init__(self, cluster_id: int, issue_width: int, num_alus: int,
                 num_lsus: int, num_fpus: int,
                 memorder: "Optional[MemoryOrderQueue]" = None) -> None:
        self.cluster_id = cluster_id
        self.issue_width = issue_width
        self.num_alus = num_alus
        self.num_lsus = num_lsus
        self.num_fpus = num_fpus
        self.memorder = memorder
        # Calendar queue: wake cycle -> [(seq, uop), ...] in arrival order.
        self._buckets: Dict[int, List[Tuple[int, InFlightUop]]] = {}
        # Sorted bucket keys; head is the next wake event.
        self._bucket_keys: List[int] = []
        self._pending_size = 0
        # (seq, uop) sorted by seq - woken, competing for select.
        self._ready: List[Tuple[int, InFlightUop]] = []
        # mem_index -> (seq, uop): woken memory ops waiting for the
        # in-order address rule; released by MemoryOrderQueue.
        self._parked_mem: Dict[int, Tuple[int, InFlightUop]] = {}
        # (seq, uop): woken IMULDIV ops waiting for a busy unit.
        self._parked_muldiv: List[Tuple[int, InFlightUop]] = []
        self.inflight = 0  # dispatched but not committed (window occupancy)

    # -- dispatch / wake-up ------------------------------------------------

    def enqueue(self, uop: InFlightUop, earliest_cycle: int) -> None:
        """Insert a micro-op whose operands' timing is fully known."""
        bucket = self._buckets.get(earliest_cycle)
        if bucket is None:
            self._buckets[earliest_cycle] = [(uop.seq, uop)]
            insort(self._bucket_keys, earliest_cycle)
        else:
            bucket.append((uop.seq, uop))
        self._pending_size += 1

    def wake(self, cycle: int) -> None:
        """Drain every calendar bucket due by ``cycle``.

        Non-memory entries (and the memory-order head) merge into the
        ready list; other memory entries park with the memory-order
        queue until their turn to compute an address arrives.
        """
        keys = self._bucket_keys
        if not keys or keys[0] > cycle:
            return
        buckets = self._buckets
        ready = self._ready
        memorder = self.memorder
        issued_upto = memorder.issued_memory_ops if memorder else -1
        merged = False
        due = 0
        limit = len(keys)
        while due < limit and keys[due] <= cycle:
            for entry in buckets.pop(keys[due]):
                self._pending_size -= 1
                mem_index = entry[1].mem_index
                if mem_index >= 0 and memorder is not None:
                    if mem_index == issued_upto:
                        ready.append(entry)
                        merged = True
                    else:
                        self._parked_mem[mem_index] = entry
                        memorder.park(mem_index, self)
                else:
                    ready.append(entry)
                    merged = True
            due += 1
        del keys[:due]
        if merged:
            ready.sort()

    def release_mem(self, mem_index: int) -> None:
        """The in-order address rule cleared: un-park this memory op."""
        insort(self._ready, self._parked_mem.pop(mem_index))

    def next_wake_cycle(self) -> Optional[int]:
        """Earliest wake-up cycle among pending entries (None if empty).

        Ready entries are *already* woken; callers deciding whether a
        cycle can be skipped must also consult :attr:`has_ready`.
        """
        return self._bucket_keys[0] if self._bucket_keys else None

    @property
    def has_ready(self) -> bool:
        """Whether any woken micro-op is competing for selection."""
        return bool(self._ready)

    # -- select -----------------------------------------------------------

    def select(self, cycle: int,
               muldiv_quota: Optional[int] = None) -> List[InFlightUop]:
        """Pick the oldest ready micro-ops the functional units accept.

        ``muldiv_quota`` is ``None`` when the multiply/divide unit is
        untracked (private and pipelined: never a hazard), else the
        number of IMULDIV ops this cluster may start this cycle (0 while
        the unit is busy, 1 once free).  IMULDIV ops that find no quota
        park and re-enter, by age, once the unit frees; the caller keeps
        quota consistent with ``_muldiv_busy_until``.
        """
        self.wake(cycle)
        ready = self._ready
        parked_muldiv = self._parked_muldiv
        if parked_muldiv and muldiv_quota:
            # The unit freed: parked IMULDIV ops compete again, by age.
            ready.extend(parked_muldiv)
            del parked_muldiv[:]
            ready.sort()
        if not ready:
            return []
        picked: List[InFlightUop] = []
        taken: List[int] = []
        alus, lsus, fpus = self.num_alus, self.num_lsus, self.num_fpus
        budget = self.issue_width
        for index, entry in enumerate(ready):
            if not budget:
                break
            uop = entry[1]
            op = uop.inst.op
            if op in MEMORY_CLASSES:
                if not lsus:
                    continue
                lsus -= 1
            elif op in FP_CLASSES:
                if not fpus:
                    continue
                fpus -= 1
            else:
                if not alus:
                    continue
                if muldiv_quota is not None and op is OpClass.IMULDIV:
                    if not muldiv_quota:
                        parked_muldiv.append(entry)
                        taken.append(index)
                        continue
                    muldiv_quota -= 1
                alus -= 1
            picked.append(uop)
            taken.append(index)
            budget -= 1
        for index in reversed(taken):
            del ready[index]
        return picked

    # -- occupancy ----------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Entries still monitored by wake-up (operands outstanding).

        This is the cluster's wake-up monitoring pressure: how many tag
        comparators the paper's CAM-style window would be burning.
        """
        return self._pending_size

    @property
    def ready_count(self) -> int:
        """Woken entries competing for selection (parked ones included:
        their operands are ready; only a hazard holds them)."""
        return (len(self._ready) + len(self._parked_mem)
                + len(self._parked_muldiv))

    @property
    def queued(self) -> int:
        """Micro-ops currently waiting to issue on this cluster."""
        return self.pending_count + self.ready_count

    def is_empty(self) -> bool:
        return not (self._pending_size or self._ready or self._parked_mem
                    or self._parked_muldiv)
