"""Per-cluster wake-up and select machinery.

Each cluster owns a :class:`ClusterScheduler`.  Dispatched micro-ops wait
in a *pending* heap keyed by their earliest possible issue cycle (the
wake-up result: max over operands of producer-result cycle plus the
inter-cluster forwarding delay).  Each cycle the scheduler migrates every
woken entry into a *ready* heap ordered by age and selects the oldest
ready micro-ops, honouring the cluster's issue width and functional-unit
mix (2 ALUs, 1 load/store unit, 1 FP unit - section 5.2).

Micro-ops that lose selection to a structural hazard stay in the ready
heap and compete again the next cycle, still by age - this mirrors an
oldest-first select tree.

The *timing* semantics of wake-up here are exactly the paper's: a
micro-op's operand becomes usable on cluster ``c`` at
``producer.result_cycle + forward_delay(producer_cluster, c)``, so a
single-cycle producer feeds a same-cluster consumer back-to-back, while a
cross-cluster consumer loses one cycle (the ``intra`` fast-forwarding
policy; section 4.3.1's other policies change ``forward_delay``).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.core.uop import InFlightUop
from repro.trace.model import FP_CLASSES, MEMORY_CLASSES, OpClass


class ClusterScheduler:
    """Wake-up/select state for one cluster."""

    def __init__(self, cluster_id: int, issue_width: int, num_alus: int,
                 num_lsus: int, num_fpus: int) -> None:
        self.cluster_id = cluster_id
        self.issue_width = issue_width
        self.num_alus = num_alus
        self.num_lsus = num_lsus
        self.num_fpus = num_fpus
        # (earliest_issue_cycle, seq, uop) - wake-up side
        self._pending: List[Tuple[int, int, InFlightUop]] = []
        # (seq, uop) - ready, competing for select
        self._ready: List[Tuple[int, InFlightUop]] = []
        self.inflight = 0  # dispatched but not committed (window occupancy)

    # -- dispatch / wake-up ------------------------------------------------

    def enqueue(self, uop: InFlightUop, earliest_cycle: int) -> None:
        """Insert a micro-op whose operands' timing is fully known."""
        heapq.heappush(self._pending, (earliest_cycle, uop.seq, uop))

    def wake(self, cycle: int) -> None:
        """Move every entry woken by ``cycle`` to the ready heap.

        Drains in bulk: woken entries are collected first and the ready
        heap is rebuilt with one :func:`heapq.heapify` instead of one
        sift per entry (selection order is unaffected - the heap only
        guarantees that pops come out in ``seq`` order, which holds for
        any internal arrangement).
        """
        pending = self._pending
        if not pending or pending[0][0] > cycle:
            return
        ready = self._ready
        woken: List[Tuple[int, InFlightUop]] = []
        while pending and pending[0][0] <= cycle:
            _, seq, uop = heapq.heappop(pending)
            woken.append((seq, uop))
        if len(woken) == 1:
            heapq.heappush(ready, woken[0])
        else:
            ready.extend(woken)
            heapq.heapify(ready)

    def next_wake_cycle(self) -> Optional[int]:
        """Earliest wake-up cycle among pending entries (None if empty).

        Ready entries are *already* woken; callers deciding whether a
        cycle can be skipped must also consult :attr:`has_ready`.
        """
        return self._pending[0][0] if self._pending else None

    @property
    def has_ready(self) -> bool:
        """Whether any woken micro-op is competing for selection."""
        return bool(self._ready)

    # -- select -----------------------------------------------------------

    def select(self, cycle: int, veto=None) -> List[InFlightUop]:
        """Pick the oldest ready micro-ops the functional units accept.

        ``veto`` is an optional predicate; micro-ops it rejects (e.g. a
        memory operation blocked by the in-order address-computation rule,
        or a multiply when the divider is busy) stay in the ready heap and
        compete again next cycle without consuming an issue slot.
        """
        self.wake(cycle)
        ready = self._ready
        if not ready:
            return []
        picked: List[InFlightUop] = []
        rejected: List[Tuple[int, InFlightUop]] = []
        alus, lsus, fpus = self.num_alus, self.num_lsus, self.num_fpus
        budget = self.issue_width
        while ready and budget:
            seq, uop = heapq.heappop(ready)
            op = uop.inst.op
            if op in MEMORY_CLASSES:
                available = lsus
            elif op in FP_CLASSES:
                available = fpus
            else:
                available = alus
            if not available:
                rejected.append((seq, uop))
                continue
            # The veto runs last: a micro-op that passes it is
            # definitely picked, so stateful vetoes (e.g. claiming a
            # shared multiply/divide unit for this cycle) are sound.
            if veto is not None and veto(uop):
                rejected.append((seq, uop))
                continue
            if op in MEMORY_CLASSES:
                lsus -= 1
            elif op in FP_CLASSES:
                fpus -= 1
            else:
                alus -= 1
            picked.append(uop)
            budget -= 1
        for entry in rejected:
            heapq.heappush(ready, entry)
        return picked

    # -- occupancy ----------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Entries still monitored by wake-up (operands outstanding).

        This is the cluster's wake-up monitoring pressure: how many tag
        comparators the paper's CAM-style window would be burning.
        """
        return len(self._pending)

    @property
    def ready_count(self) -> int:
        """Woken entries competing for selection this cycle."""
        return len(self._ready)

    @property
    def queued(self) -> int:
        """Micro-ops currently waiting to issue on this cluster."""
        return len(self._pending) + len(self._ready)

    def is_empty(self) -> bool:
        return not self._pending and not self._ready
