"""Cycle-by-cycle pipeline tracing for debugging and teaching.

:class:`PipelineTracer` wraps a :class:`repro.core.processor.Processor`
and records, per instruction, its dispatch / issue / completion / commit
cycles plus the cluster that executed it.  :func:`format_timeline` renders
the classic pipeline diagram::

    seq  op      cluster  D      I      C      R
    0    IALU    C0       0      1      2      2
    1    LOAD    C1       0      1      3      3
    ...

and :func:`format_gantt` an ASCII occupancy chart.  Tracing costs one
callback per pipeline event, so it is intended for short diagnostic runs,
not for the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.processor import Processor


@dataclass
class InstructionTimeline:
    """Lifecycle milestones of one committed instruction."""

    seq: int
    op: str
    cluster: int
    dispatch: int
    issue: int
    complete: int
    commit: int

    @property
    def queue_delay(self) -> int:
        """Cycles between dispatch and issue (wake-up + select wait)."""
        return self.issue - self.dispatch

    @property
    def latency(self) -> int:
        return self.complete - self.issue


class PipelineTracer:
    """Records instruction lifecycles from a processor run.

    The tracer drives the processor itself (:meth:`run`) and snapshots
    the ROB between cycles - no processor modification needed.
    """

    def __init__(self, processor: Processor) -> None:
        self.processor = processor
        self.records: List[InstructionTimeline] = []
        self._live = {}

    def run(self, instructions: int, max_cycles: int = 1_000_000) -> None:
        """Step the machine, harvesting lifecycles until ``instructions``
        have committed (or the trace ends)."""
        processor = self.processor
        target = processor.stats.committed + instructions
        for _ in range(max_cycles):
            before = {uop.seq: uop for uop in processor._rob}
            self._live.update(before)
            processor.step()
            after = {uop.seq for uop in processor._rob}
            commit_cycle = processor.cycle - 1
            for seq, uop in sorted(self._live.items()):
                if seq not in after:
                    self.records.append(InstructionTimeline(
                        seq=seq,
                        op=uop.inst.op.name,
                        cluster=uop.cluster,
                        dispatch=uop.dispatch_cycle,
                        issue=uop.issue_cycle,
                        complete=uop.result_cycle,
                        commit=commit_cycle,
                    ))
                    del self._live[seq]
            if processor.stats.committed >= target:
                return
            if processor.frontend.exhausted and not processor._rob:
                return

    # -- reporting ---------------------------------------------------------

    def mean_queue_delay(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.queue_delay for r in self.records) \
            / len(self.records)


def format_timeline(records: List[InstructionTimeline],
                    limit: Optional[int] = None) -> str:
    """The per-instruction milestone table."""
    rows = records if limit is None else records[:limit]
    lines = [f"{'seq':>5s} {'op':<8s} {'clu':>3s} {'disp':>6s} "
             f"{'issue':>6s} {'done':>6s} {'commit':>6s} {'wait':>5s}"]
    for record in rows:
        lines.append(
            f"{record.seq:>5d} {record.op:<8s} {record.cluster:>3d} "
            f"{record.dispatch:>6d} {record.issue:>6d} "
            f"{record.complete:>6d} {record.commit:>6d} "
            f"{record.queue_delay:>5d}")
    return "\n".join(lines)


def format_gantt(records: List[InstructionTimeline], width: int = 72,
                 limit: int = 32) -> str:
    """ASCII execution chart: one row per instruction, ``D``ispatch,
    ``=`` waiting, ``X`` executing, ``C`` commit."""
    rows = records[:limit]
    if not rows:
        return "(no records)"
    start = min(record.dispatch for record in rows)
    end = max(record.commit for record in rows)
    span = max(1, end - start + 1)
    scale = max(1, -(-span // width))  # cycles per column, ceil
    lines = []
    for record in rows:
        columns = ["."] * min(width, -(-span // scale))
        for cycle in range(record.dispatch, record.commit + 1):
            index = (cycle - start) // scale
            if index >= len(columns):
                continue
            if cycle < record.issue:
                mark = "="
            elif cycle < record.complete:
                mark = "X"
            else:
                mark = "c"
            if columns[index] in (".", "="):
                columns[index] = mark
        first = (record.dispatch - start) // scale
        if first < len(columns):
            columns[first] = "D"
        lines.append(f"{record.seq:>5d} {record.op:<8s} "
                     f"C{record.cluster} |{''.join(columns)}|")
    header = (f"cycles {start}..{end}  ({scale} cycle(s)/column; "
              f"D dispatch, = wait, X execute, c complete/commit)")
    return header + "\n" + "\n".join(lines)


def trace_pipeline(config, trace, instructions: int = 64,
                   ) -> PipelineTracer:
    """Convenience: build, run and return a tracer."""
    tracer = PipelineTracer(Processor(config, trace))
    tracer.run(instructions)
    return tracer
