"""Simulation statistics.

:class:`SimulationStats` accumulates the counters the paper's evaluation
needs (IPC, misprediction rate, stall breakdown, per-cluster workload and
the unbalancing bookkeeping behind Figure 5) plus general diagnostics.

The processor calls :meth:`reset_measurement` at the end of cache/predictor
warm-up; every counter then restarts from zero while the microarchitectural
state (caches, predictor, register maps) is preserved - mirroring the
paper's 20 M-instruction warm-up before the measured slice.
"""

from __future__ import annotations

from typing import Dict, List

from repro.metrics.unbalance import (  # noqa: F401  (re-exported API)
    UNBALANCE_GROUP,
    UNBALANCE_HIGH,
    UNBALANCE_LOW,
    unbalance_thresholds,
)
from repro.obs.registry import GroupBalanceTracker


class SimulationStats:
    """Counter bundle for one simulation run."""

    def __init__(self, num_clusters: int) -> None:
        self.num_clusters = num_clusters
        # Provenance, set once per run (not a measurement counter): the
        # allocation policy and the seed its per-instance RNG was built
        # from, so any matrix cell can be reproduced from its record.
        self.allocation_policy: str = ""
        self.allocation_seed: int = -1
        self.reset_measurement()

    def record_run_metadata(self, policy: str, seed: int) -> None:
        """Pin the reproducibility provenance of this run."""
        self.allocation_policy = policy
        self.allocation_seed = seed

    def reset_measurement(self) -> None:
        self.cycles = 0
        self.committed = 0
        self.dispatched = 0
        self.issued = 0
        self.branches = 0
        self.mispredictions = 0
        self.loads = 0
        self.stores = 0
        self.store_forwards = 0

        # Forwarding locality (section 4.3.1): for operands captured on
        # the bypass network (producer still in flight at dispatch),
        # whether the consumer sits on the producing cluster.
        self.bypass_edges_intra = 0
        self.bypass_edges_inter = 0
        self.l1_misses = 0
        self.l2_misses = 0

        # Stall accounting: why the front end could not deliver a slot.
        self.stall_rob_full = 0
        self.stall_cluster_full = 0
        self.stall_no_register = 0
        self.stall_branch_penalty = 0
        # Front-end slots consumed by deadlock-breaking register moves
        # (including slots charged in a later cycle when the moves
        # exceeded the cycle's remaining budget).
        self.stall_deadlock_moves = 0
        # Moves injected during the measured slice only: the processor
        # reports the delta against a snapshot taken at measurement
        # reset, so warm-up moves never leak into the measured counters.
        self.deadlock_moves = 0

        self.cluster_allocated = [0] * self.num_clusters
        self.cluster_issued = [0] * self.num_clusters
        self.swapped_forms = 0

        # Figure 5 bookkeeping, delegated to the shared incremental
        # tracker of repro.obs.registry.  The group totals are kept as
        # plain attributes (not views into the tracker) so experiment
        # relation-checks can override them on a result.
        self._balance = GroupBalanceTracker(self.num_clusters,
                                            UNBALANCE_GROUP)
        self.groups_total = 0
        self.groups_unbalanced = 0

    # -- recording -----------------------------------------------------------

    def record_allocation(self, cluster: int, swapped: bool) -> None:
        self.cluster_allocated[cluster] += 1
        if swapped:
            self.swapped_forms += 1
        closed_unbalanced = self._balance.feed(cluster)
        if closed_unbalanced is not None:
            self.groups_total += 1
            if closed_unbalanced:
                self.groups_unbalanced += 1

    # -- derived metrics ---------------------------------------------------

    @property
    def ipc(self) -> float:
        """Committed instructions per cycle."""
        if not self.cycles:
            return 0.0
        return self.committed / self.cycles

    @property
    def misprediction_rate(self) -> float:
        if not self.branches:
            return 0.0
        return self.mispredictions / self.branches

    @property
    def unbalancing_degree(self) -> float:
        """Figure 5's metric: the ratio of unbalanced 128-inst groups (%)."""
        if not self.groups_total:
            return 0.0
        return 100.0 * self.groups_unbalanced / self.groups_total

    @property
    def bypass_locality(self) -> float:
        """Fraction of bypass-captured operands produced on the consumer's
        own cluster (section 4.3.1: WSRS statistically doubles this over
        round-robin allocation)."""
        total = self.bypass_edges_intra + self.bypass_edges_inter
        if not total:
            return 0.0
        return self.bypass_edges_intra / total

    @property
    def workload_shares(self) -> List[float]:
        """Fraction of instructions allocated to each cluster."""
        total = sum(self.cluster_allocated)
        if not total:
            return [0.0] * self.num_clusters
        return [count / total for count in self.cluster_allocated]

    def summary(self) -> Dict[str, float]:
        """A flat dictionary for reports and experiment tables."""
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": self.ipc,
            "misprediction_rate": self.misprediction_rate,
            "unbalancing_degree": self.unbalancing_degree,
            "stall_rob_full": self.stall_rob_full,
            "stall_cluster_full": self.stall_cluster_full,
            "stall_no_register": self.stall_no_register,
            "stall_branch_penalty": self.stall_branch_penalty,
            "stall_deadlock_moves": self.stall_deadlock_moves,
            "deadlock_moves": self.deadlock_moves,
            "store_forwards": self.store_forwards,
            "bypass_locality": self.bypass_locality,
            "l1_misses": self.l1_misses,
            "l2_misses": self.l2_misses,
            "swapped_forms": self.swapped_forms,
            "allocation_seed": self.allocation_seed,
        }
