"""Memory ordering: in-order address computation and load bypassing.

Section 5.2 of the paper: "Load/store addresses were computed in order,
loads bypassing stores whenever no conflict was encountered."

:class:`MemoryOrderQueue` enforces exactly that contract:

* every memory micro-op receives a *memory index* at dispatch (its rank in
  the program order of memory operations);
* a memory op may issue - i.e. compute its address and access the cache -
  only when every older memory op has issued, so addresses are produced in
  program order;
* a load whose address matches an *outstanding* older store (issued but
  not yet committed) receives its data through store-to-load forwarding at
  L1-hit latency instead of accessing the cache.

Conflicts are detected at 8-byte-word granularity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # avoids an import cycle at runtime
    from repro.core.issue_queue import ClusterScheduler

#: Conflict-detection granularity (bytes).
WORD_BYTES = 8


class MemoryOrderQueue:
    """Tracks memory program order and the outstanding-store buffer."""

    def __init__(self) -> None:
        self._next_index = 0
        self._issued_upto = 0
        # word address -> seq of the youngest outstanding store to it
        self._store_words: Dict[int, int] = {}
        # store seq -> word address (for commit-time removal)
        self._store_by_seq: Dict[int, int] = {}
        # mem_index -> scheduler holding a woken op parked on the
        # in-order address rule; released the cycle its turn arrives.
        self._parked: Dict[int, "ClusterScheduler"] = {}

    # -- dispatch ----------------------------------------------------------

    def register(self) -> int:
        """Assign the next memory index (call once per memory op, in
        program order, at dispatch)."""
        index = self._next_index
        self._next_index += 1
        return index

    # -- issue ----------------------------------------------------------------

    def can_issue(self, mem_index: int) -> bool:
        """Whether all older memory operations have computed their
        address."""
        return mem_index == self._issued_upto

    def park(self, mem_index: int, scheduler: "ClusterScheduler") -> None:
        """A woken memory op waits for the in-order address rule; its
        scheduler is called back the moment ``mem_index`` becomes the
        memory-order head."""
        self._parked[mem_index] = scheduler

    def _advance(self) -> None:
        self._issued_upto += 1
        scheduler = self._parked.pop(self._issued_upto, None)
        if scheduler is not None:
            scheduler.release_mem(self._issued_upto)

    def issue_store(self, seq: int, addr: int, mem_index: int) -> None:
        """A store computes its address and enters the store buffer."""
        assert mem_index == self._issued_upto
        self._advance()
        word = addr // WORD_BYTES
        self._store_words[word] = seq
        self._store_by_seq[seq] = word

    def issue_load(self, addr: int, mem_index: int) -> Optional[int]:
        """A load computes its address.

        Returns the sequence number of the youngest conflicting
        outstanding store (the forwarding source), or ``None`` when the
        load bypasses all stores and accesses the cache.
        """
        assert mem_index == self._issued_upto
        self._advance()
        return self._store_words.get(addr // WORD_BYTES)

    # -- commit ----------------------------------------------------------------

    def commit_store(self, seq: int) -> None:
        """Remove a committed store from the outstanding buffer."""
        word = self._store_by_seq.pop(seq, None)
        if word is not None and self._store_words.get(word) == seq:
            del self._store_words[word]

    # -- introspection --------------------------------------------------------

    @property
    def outstanding_stores(self) -> int:
        return len(self._store_by_seq)

    @property
    def issued_memory_ops(self) -> int:
        return self._issued_upto
