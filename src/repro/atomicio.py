"""Atomic file publication shared by every disk-writing subsystem.

Both the trace cache's disk tier (:mod:`repro.trace.cache`) and the
service result store (:mod:`repro.service.store`) can have many worker
processes racing to publish the *same* key at the same time.  The only
safe publication protocol on POSIX is

    write to a unique temporary file in the destination directory,
    then ``os.replace`` it over the final name

because ``os.replace`` is atomic within a filesystem: a reader either
sees the old complete file or the new complete file, never a torn
write.  The temporary name must be unique *per writer* - a fixed
``path + ".tmp"`` (or even ``path + pid``, for threads sharing one
process) re-introduces the race as two writers truncate each other's
half-written temp file.  :func:`tempfile.mkstemp` gives that uniqueness
unconditionally.

Every helper here tolerates losing the race: when several writers
publish the same key the last ``os.replace`` wins, and since callers
only ever publish identical content for identical keys (cache entries
and idempotent job results are pure functions of their key) the winner
is always a valid file.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from typing import Any, Union

PathLike = Union[str, os.PathLike]


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Publish ``data`` at ``path`` atomically (temp file + rename).

    The temporary file lives in ``path``'s directory so the final
    ``os.replace`` never crosses a filesystem boundary.  On any failure
    the temp file is removed and the destination is left untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    handle, tmp = tempfile.mkstemp(dir=directory,
                                   prefix=os.path.basename(path) + ".",
                                   suffix=".tmp")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> None:
    """Publish ``text`` at ``path`` atomically."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: PathLike, payload: Any, **dumps_kwargs) -> None:
    """Publish a JSON document at ``path`` atomically."""
    atomic_write_text(path, json.dumps(payload, **dumps_kwargs))


def atomic_write_pickle(path: PathLike, payload: Any) -> None:
    """Publish a pickle at ``path`` atomically."""
    atomic_write_bytes(
        path, pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
