"""Static dataflow analysis of instruction traces.

The degrees-of-freedom argument of section 3.3 rests on workload facts
the paper asserts qualitatively: "a large fraction of the instructions
are either monadic or noadic", many dyadic operations are commutative,
and compilers keep invariant operands live in registers.  This module
measures those facts on any trace:

* :func:`operand_profile` - the monadic/dyadic/noadic split, the
  commutative share of dyadic work, and the resulting average number of
  legal WSRS clusters per instruction under the RM and RC policies;
* :func:`dataflow_limits` - the dataflow critical path and the ideal
  (infinite-machine) IPC, plus a producer-distance histogram - the trace
  properties that bound what any schedule can achieve;
* :func:`register_lifetimes` - definition-to-last-use distances, the
  quantity register-file sizing trades against.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.allocation.policies import legal_choices
from repro.config import DEFAULT_LATENCIES
from repro.trace.model import OpClass, TraceInstruction


@dataclass
class OperandProfile:
    """Monadic/dyadic structure of a trace (section 3.3's facts)."""

    instructions: int = 0
    noadic: int = 0
    monadic: int = 0
    dyadic: int = 0
    commutative_dyadic: int = 0
    with_destination: int = 0
    mean_choices_rm: float = 0.0
    mean_choices_rc: float = 0.0

    @property
    def monadic_or_noadic_fraction(self) -> float:
        if not self.instructions:
            return 0.0
        return (self.monadic + self.noadic) / self.instructions

    @property
    def commutative_fraction_of_dyadic(self) -> float:
        if not self.dyadic:
            return 0.0
        return self.commutative_dyadic / self.dyadic


def operand_profile(trace: Iterable[TraceInstruction],
                    num_subsets: int = 4) -> OperandProfile:
    """Measure the operand structure and WSRS allocation freedom.

    Register subsets are tracked like the renamer's f/s vectors (each
    register belongs to the subset of the cluster that would have
    produced it under the fully-constrained base rule), so the
    ``mean_choices_*`` figures reflect steady-state freedom, not the
    initial mapping.
    """
    profile = OperandProfile()
    subset_of_register: Dict[int, int] = {}

    def subset_of(logical: int) -> int:
        return subset_of_register.get(logical, logical % num_subsets)

    total_rm = 0
    total_rc = 0
    for inst in trace:
        profile.instructions += 1
        if inst.is_dyadic:
            profile.dyadic += 1
            if inst.commutative:
                profile.commutative_dyadic += 1
        elif inst.is_monadic:
            profile.monadic += 1
        else:
            profile.noadic += 1
        if inst.has_dest:
            profile.with_destination += 1
        rm = legal_choices(inst, subset_of, allow_swap=False)
        rc = legal_choices(inst, subset_of, allow_swap=True)
        total_rm += len(rm)
        total_rc += len(rc)
        if inst.dest is not None:
            # follow the base-rule cluster so subsets evolve plausibly
            subset_of_register[inst.dest] = rm[0][0]
    if profile.instructions:
        profile.mean_choices_rm = total_rm / profile.instructions
        profile.mean_choices_rc = total_rc / profile.instructions
    return profile


@dataclass
class DataflowLimits:
    """Machine-independent bounds implied by the trace's dataflow."""

    instructions: int
    critical_path_cycles: int
    ideal_ipc: float
    #: histogram of producer distances (in instructions), bucketed
    distance_histogram: Dict[str, int] = field(default_factory=dict)
    mean_distance: float = 0.0


_DISTANCE_BUCKETS = ((1, "1"), (2, "2"), (4, "3-4"), (8, "5-8"),
                     (16, "9-16"), (64, "17-64"), (1 << 60, ">64"))


def _bucket(distance: int) -> str:
    for limit, label in _DISTANCE_BUCKETS:
        if distance <= limit:
            return label
    return ">64"


def dataflow_limits(
    trace: Iterable[TraceInstruction],
    latencies: Optional[Dict[OpClass, int]] = None,
) -> DataflowLimits:
    """Critical path / ideal IPC of a trace, ignoring all resources."""
    latencies = latencies or DEFAULT_LATENCIES
    ready_at: Dict[int, int] = {}
    produced_at: Dict[int, int] = {}
    histogram: Counter = Counter()
    critical = 0
    count = 0
    distance_sum = 0
    distance_count = 0
    for index, inst in enumerate(trace):
        start = 0
        for source in (inst.src1, inst.src2):
            if source is None:
                continue
            start = max(start, ready_at.get(source, 0))
            producer = produced_at.get(source)
            if producer is not None:
                distance = index - producer
                histogram[_bucket(distance)] += 1
                distance_sum += distance
                distance_count += 1
        done = start + latencies[inst.op]
        if inst.dest is not None:
            ready_at[inst.dest] = done
            produced_at[inst.dest] = index
        critical = max(critical, done)
        count += 1
    return DataflowLimits(
        instructions=count,
        critical_path_cycles=critical,
        ideal_ipc=(count / critical) if critical else 0.0,
        distance_histogram=dict(histogram),
        mean_distance=(distance_sum / distance_count)
        if distance_count else 0.0,
    )


@dataclass
class LifetimeStats:
    """Register definition-to-last-use statistics."""

    definitions: int
    mean_lifetime: float
    max_lifetime: int
    never_read_fraction: float


def register_lifetimes(trace: Iterable[TraceInstruction]) -> LifetimeStats:
    """Definition-to-last-use distances (in instructions).

    'Many physical registers are not even ever read since they are used
    only once and captured through the bypass network' (section 6,
    discussing register caches) - this measures that phenomenon on our
    traces.
    """
    defined_at: Dict[int, int] = {}
    last_use: Dict[int, int] = {}
    read_count: Dict[int, int] = {}
    lifetimes: List[int] = []
    never_read = 0

    def close_definition(register: int) -> None:
        nonlocal never_read
        start = defined_at.pop(register)
        if read_count.get(register, 0):
            lifetimes.append(last_use[register] - start)
        else:
            never_read += 1
        read_count.pop(register, None)
        last_use.pop(register, None)

    for index, inst in enumerate(trace):
        for source in (inst.src1, inst.src2):
            if source is not None and source in defined_at:
                last_use[source] = index
                read_count[source] = read_count.get(source, 0) + 1
        if inst.dest is not None:
            if inst.dest in defined_at:
                close_definition(inst.dest)
            defined_at[inst.dest] = index
    for register in list(defined_at):
        close_definition(register)

    definitions = len(lifetimes) + never_read
    return LifetimeStats(
        definitions=definitions,
        mean_lifetime=(sum(lifetimes) / len(lifetimes))
        if lifetimes else 0.0,
        max_lifetime=max(lifetimes, default=0),
        never_read_fraction=(never_read / definitions)
        if definitions else 0.0,
    )


def format_profile(profile: OperandProfile) -> str:
    """Readable one-block summary of an operand profile."""
    total = max(profile.instructions, 1)
    return "\n".join([
        f"instructions          {profile.instructions}",
        f"noadic                {profile.noadic / total:7.1%}",
        f"monadic               {profile.monadic / total:7.1%}",
        f"dyadic                {profile.dyadic / total:7.1%}"
        f"  (commutative {profile.commutative_fraction_of_dyadic:.1%})",
        f"monadic-or-noadic     "
        f"{profile.monadic_or_noadic_fraction:7.1%}",
        f"mean legal clusters   RM {profile.mean_choices_rm:.2f} / "
        f"RC {profile.mean_choices_rc:.2f}",
    ])
