"""Register-subset dynamics under WSRS allocation.

Section 5.4's analysis hinges on *where values live*: once an
instruction's operands sit in particular subsets, the cluster is (mostly)
determined, and its result re-enters the subset population.  This module
replays that Markov dynamic symbolically - no timing, just the
subset-of-each-register state - and reports:

* the long-run subset occupancy of produced values,
* the *persistence* of the top/bottom (f) and left/right (s) bits along
  the produced-value sequence: how long the machine stays on one
  bicluster before a degree of freedom moves it,
* per-policy cluster run lengths - the burstiness behind the 128-
  instruction unbalance metric of Figure 5.

This is the analysis tool behind the workload-balance tuning of the
synthetic profiles (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.allocation.policies import Allocator, make_allocator
from repro.trace.model import TraceInstruction


@dataclass
class SubsetFlowReport:
    """Outcome of a symbolic subset replay."""

    instructions: int = 0
    produced: int = 0
    subset_shares: List[float] = field(default_factory=list)
    mean_f_run: float = 0.0   # mean run length of the top/bottom bit
    mean_s_run: float = 0.0   # mean run length of the left/right bit
    mean_cluster_run: float = 0.0
    swapped_fraction: float = 0.0


def _mean_run_length(bits: List[int]) -> float:
    if not bits:
        return 0.0
    runs = 1
    for previous, current in zip(bits, bits[1:]):
        if current != previous:
            runs += 1
    return len(bits) / runs


def analyze_subset_flow(
    trace: Iterable[TraceInstruction],
    policy: str = "random_monadic",
    num_clusters: int = 4,
    seed: int = 0,
) -> SubsetFlowReport:
    """Replay a trace through an allocation policy, tracking subsets.

    Works with any registered policy; WSRS-legal policies (RM, RC,
    dependence-aware) produce the interesting dynamics.
    """
    allocator: Allocator = make_allocator(policy, num_clusters, seed)
    subset_of_register: Dict[int, int] = {}

    def subset_of(logical: int) -> int:
        return subset_of_register.get(logical, logical % num_clusters)

    report = SubsetFlowReport()
    clusters: List[int] = []
    swapped_count = 0
    subset_population = [0] * num_clusters
    for inst in trace:
        report.instructions += 1
        cluster, swapped = allocator.allocate(inst, subset_of, None)
        swapped_count += swapped
        clusters.append(cluster)
        if inst.dest is not None:
            subset_of_register[inst.dest] = cluster
            subset_population[cluster] += 1
            report.produced += 1
    if report.produced:
        report.subset_shares = [count / report.produced
                                for count in subset_population]
    else:
        report.subset_shares = [0.0] * num_clusters
    if clusters:
        report.mean_cluster_run = _mean_run_length(clusters)
        report.mean_f_run = _mean_run_length([c >> 1 for c in clusters])
        report.mean_s_run = _mean_run_length([c & 1 for c in clusters])
        report.swapped_fraction = swapped_count / len(clusters)
    return report


def compare_policies(
    trace_factory,
    policies: Iterable[str] = ("random_monadic", "random_commutative",
                               "dependence_aware"),
    seed: int = 0,
) -> Dict[str, SubsetFlowReport]:
    """Run the same trace through several policies.

    ``trace_factory()`` must return a fresh trace iterator per call (the
    replay consumes it).
    """
    return {policy: analyze_subset_flow(trace_factory(), policy,
                                        seed=seed)
            for policy in policies}
