"""Workload and dataflow analyses supporting the paper's arguments."""

from repro.analysis.dependence import (
    dataflow_limits,
    operand_profile,
    register_lifetimes,
)
from repro.analysis.subset_flow import analyze_subset_flow, compare_policies

__all__ = ["analyze_subset_flow", "compare_policies", "dataflow_limits",
           "operand_profile", "register_lifetimes"]
