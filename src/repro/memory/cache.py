"""Set-associative cache model with LRU replacement.

A deliberately simple, fully tested building block: the simulator only
needs hit/miss classification (timing is composed by
:mod:`repro.memory.hierarchy`), so the model tracks tags, not data.
Write policy is write-allocate (stores fetch the line on a miss), which is
what the Table 3 bandwidth figures imply.
"""

from __future__ import annotations

from typing import List

from repro.config import CacheConfig


class Cache:
    """One cache level: tag arrays plus LRU state.

    Each set is a list of tags ordered most-recently-used first; with the
    small associativities of Table 3 (4 and 8 ways) list operations are
    faster than any fancier structure in CPython.
    """

    def __init__(self, config: CacheConfig) -> None:
        config.validate()
        self.config = config
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._set_bits = self._set_mask.bit_length()
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- address split ---------------------------------------------------

    def line_address(self, addr: int) -> int:
        return addr >> self._offset_bits

    def set_index(self, addr: int) -> int:
        return self.line_address(addr) & self._set_mask

    def tag(self, addr: int) -> int:
        return self.line_address(addr) >> (self._set_mask.bit_length())

    # -- operations --------------------------------------------------------

    def lookup(self, addr: int) -> bool:
        """Whether ``addr`` currently hits, *without* touching LRU state."""
        return self.tag(addr) in self._sets[self.set_index(addr)]

    def access(self, addr: int) -> bool:
        """Access ``addr``: returns True on hit.  Misses allocate the line.

        LRU order is updated on both hits and fills.
        """
        line = addr >> self._offset_bits
        tags = self._sets[line & self._set_mask]
        tag = line >> self._set_bits
        try:
            position = tags.index(tag)
        except ValueError:
            self.misses += 1
            if len(tags) >= self.config.associativity:
                tags.pop()
                self.evictions += 1
            tags.insert(0, tag)
            return False
        self.hits += 1
        if position:
            del tags[position]
            tags.insert(0, tag)
        return True

    def fill(self, addr: int) -> None:
        """Count and allocate a known miss for ``addr``.

        Split out of :meth:`access` so a caller that has already probed
        the set inline (the specialized stepper's L1 fast path) can
        complete the miss without re-searching the tags.
        """
        line = addr >> self._offset_bits
        tags = self._sets[line & self._set_mask]
        self.misses += 1
        if len(tags) >= self.config.associativity:
            tags.pop()
            self.evictions += 1
        tags.insert(0, line >> self._set_bits)

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr`` if present; True if it was."""
        tags = self._sets[self.set_index(addr)]
        tag = self.tag(addr)
        try:
            tags.remove(tag)
        except ValueError:
            return False
        return True

    def flush(self) -> None:
        """Empty the cache (used between warm-up phases in tests)."""
        for tags in self._sets:
            tags.clear()

    # -- statistics --------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
