"""Two-level data-memory hierarchy with the Table 3 timing.

==========  ======  =========  ============  ============
level       size    latency    miss penalty  bandwidth
==========  ======  =========  ============  ============
L1 D-cache  32 KB   2 cycles   12 cycles     4 words/cycle
L2 cache    512 KB  12 cycles  80 cycles     16 B/cycle
==========  ======  =========  ============  ============

The model composes latencies the way the paper's table does: an access
costs the L1 hit latency; an L1 miss adds the 12-cycle penalty; an L2 miss
adds a further 80 cycles.  The 16 B/cycle L2 bandwidth is modelled as a
refill bus that is busy for ``line_bytes / 16`` cycles per L1 miss;
back-to-back misses queue on that bus.  L1 port arbitration (4 accesses
per cycle) is enforced by the core's load/store issue logic - each cluster
has a single load/store unit, so at most 4 accesses start per cycle by
construction, matching the table.
"""

from __future__ import annotations

from repro.config import MemoryConfig
from repro.memory.cache import Cache


class AccessResult:
    """Outcome of one data access."""

    __slots__ = ("latency", "l1_hit", "l2_hit")

    def __init__(self, latency: int, l1_hit: bool, l2_hit: bool) -> None:
        self.latency = latency
        self.l1_hit = l1_hit
        self.l2_hit = l2_hit


class MemoryHierarchy:
    """L1 + L2 + main memory, shared by all clusters."""

    def __init__(self, config: MemoryConfig | None = None) -> None:
        self.config = config or MemoryConfig()
        self.config.validate()
        self.l1 = Cache(self.config.l1)
        self.l2 = Cache(self.config.l2)
        self._l2_bus_free_at = 0
        self.loads = 0
        self.stores = 0

    def access(self, addr: int, cycle: int, is_store: bool = False,
               ) -> AccessResult:
        """Perform an access starting at ``cycle``; returns its timing.

        ``latency`` is the full load-to-use latency in cycles (2 on an L1
        hit, per Table 2/3).  Stores update cache state identically
        (write-allocate) but the core does not wait on their latency.
        """
        if is_store:
            self.stores += 1
        else:
            self.loads += 1
        l1_hit = self.l1.access(addr)
        if l1_hit:
            return AccessResult(self.config.l1.hit_latency, True, False)

        l2_hit = self.l2.access(addr)
        latency = self.config.l1.hit_latency + self.config.l1.miss_penalty
        if not l2_hit:
            latency += self.config.l2.miss_penalty

        # Refill bus: the miss occupies the L2-to-L1 path once its data is
        # ready; earlier queued refills delay it.
        data_ready = cycle + latency
        start = max(data_ready, self._l2_bus_free_at)
        queue_delay = start - data_ready
        self._l2_bus_free_at = start + self.config.l2_refill_cycles
        return AccessResult(latency + queue_delay, False, l2_hit)

    def access_after_l1_miss(self, addr: int, cycle: int):
        """Slow path for a demand access that already missed in L1.

        The specialized stepper probes the L1 tag array inline (hits
        are the common case and need no call at all) and lands here
        only on a miss, with no state touched yet.  This fills L1,
        accesses L2, applies the refill-bus queueing, and returns
        ``(latency, l2_hit)``.  The caller owns the loads/stores and
        L1-hit counters.
        """
        self.l1.fill(addr)
        l2_hit = self.l2.access(addr)
        latency = self.config.l1.hit_latency + self.config.l1.miss_penalty
        if not l2_hit:
            latency += self.config.l2.miss_penalty
        data_ready = cycle + latency
        start = self._l2_bus_free_at
        if start < data_ready:
            start = data_ready
        self._l2_bus_free_at = start + self.config.l2_refill_cycles
        return latency + (start - data_ready), l2_hit

    def warm(self, addresses, cycle: int = 0) -> None:
        """Touch a sequence of addresses (cache warm-up helper)."""
        for addr in addresses:
            self.access(addr, cycle)

    def reset_stats(self) -> None:
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.loads = 0
        self.stores = 0

    # -- statistics --------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.loads + self.stores

    def summary(self) -> dict:
        return {
            "accesses": self.accesses,
            "l1_miss_rate": self.l1.miss_rate,
            "l2_miss_rate": self.l2.miss_rate,
        }
