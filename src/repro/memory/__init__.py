"""Data-memory hierarchy (Table 3)."""

from repro.memory.cache import Cache
from repro.memory.hierarchy import AccessResult, MemoryHierarchy

__all__ = ["AccessResult", "Cache", "MemoryHierarchy"]
