"""Exception hierarchy for the WSRS reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An inconsistent or unsupported machine configuration was requested."""


class IsaError(ReproError):
    """Base class for ISA-level errors (assembly, decoding, execution)."""


class AssemblyError(IsaError):
    """The assembler rejected a source program.

    Parameters
    ----------
    message:
        Human-readable description of the problem.
    line:
        1-based source line number, when known.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ExecutionError(IsaError):
    """The functional executor hit an illegal state (bad PC, bad access)."""


class RenameError(ReproError):
    """Register renaming was asked to do something impossible."""


class FreeListUnderflow(RenameError):
    """A free list was asked for more registers than it holds.

    The renamer normally checks availability before picking; seeing this
    exception indicates a bug in the caller, not a simulated stall.
    """


class RenameDeadlockError(RenameError):
    """The deadlock of paper section 2.3 was detected.

    All the physical registers of a subset are mapped to architectural
    registers, so no instruction targeting that subset can ever be renamed
    again.  Raised only when the deadlock policy is ``"raise"``.
    """


class AllocationError(ReproError):
    """A cluster-allocation policy produced an illegal assignment."""


class VerificationError(ReproError):
    """An invariant of the verification layer (:mod:`repro.verify`) failed.

    Raised by the static configuration rules when a whole-machine
    invariant is broken and subclassed by the runtime pipeline
    sanitizer's :class:`repro.verify.sanitizer.SanitizerViolation`.
    """


class TraceError(ReproError):
    """A trace stream is malformed or ended unexpectedly."""


class CostModelError(ReproError):
    """The hardware cost models were given unsupported parameters."""


class ExperimentError(ReproError):
    """An experiment driver could not complete."""
