"""SimISA: the SPARC-flavoured mini-ISA, assembler and executor."""

from repro.isa.assembler import assemble
from repro.isa.executor import Executor, execute_program
from repro.isa.program import Instruction, Program
from repro.isa.registers import isa_machine_config, parse_register

__all__ = ["Executor", "Instruction", "Program", "assemble",
           "execute_program", "isa_machine_config", "parse_register"]
