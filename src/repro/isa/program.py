"""Decoded-program container for SimISA."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AssemblyError
from repro.isa.instructions import InstructionSpec

#: Address of the first instruction (arbitrary, nonzero for realism).
TEXT_BASE = 0x400


@dataclass
class Instruction:
    """One decoded SimISA instruction."""

    spec: InstructionSpec
    dest: Optional[int] = None       # flat logical register
    src1: Optional[int] = None
    src2: Optional[int] = None
    immediate: Optional[int] = None
    target: Optional[str] = None     # branch label (resolved separately)
    line: int = 0                    # source line, for diagnostics

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.spec.mnemonic]
        for value in (self.dest, self.src1, self.src2):
            if value is not None:
                parts.append(f"x{value}")
        if self.immediate is not None:
            parts.append(f"#{self.immediate}")
        if self.target is not None:
            parts.append(self.target)
        return " ".join(parts)


@dataclass
class Program:
    """A fully assembled program: instructions plus resolved labels."""

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    source_name: str = "<memory>"

    def __len__(self) -> int:
        return len(self.instructions)

    def pc_of_index(self, index: int) -> int:
        return TEXT_BASE + 4 * index

    def index_of_label(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblyError(f"undefined label {label!r}") from None

    def resolve_targets(self) -> None:
        """Check every branch target exists (second assembler pass)."""
        for instruction in self.instructions:
            if instruction.target is not None:
                if instruction.target not in self.labels:
                    raise AssemblyError(
                        f"undefined label {instruction.target!r}",
                        instruction.line)
