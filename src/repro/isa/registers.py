"""Register model of the SimISA mini-ISA.

SimISA is a SPARC-flavoured load/store ISA used to produce *real* traces
(assembled, functionally executed programs) alongside the synthetic
generator.  It exposes 32 integer registers ``r0..r31`` (``r0`` is the
architectural zero: reads return 0, writes are discarded) and 32
floating-point registers ``f0..f31``.

Trace encoding: integer register ``ri`` is flat logical register ``i``;
floating-point register ``fi`` is flat logical register ``32 + i``
(:mod:`repro.trace.model` convention).  Simulating SimISA traces therefore
requires a machine configuration with ``int_logical_registers=32`` and
``fp_logical_registers=32`` - see :func:`isa_machine_config`.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import AssemblyError

NUM_INT_REGS = 32
NUM_FP_REGS = 32

#: Flat-trace index of the first FP register.
FP_BASE = NUM_INT_REGS

_REGISTER_RE = re.compile(r"^([rf])(\d{1,2})$")


def parse_register(token: str, line: Optional[int] = None) -> int:
    """Parse ``rN``/``fN`` into a flat logical register index."""
    match = _REGISTER_RE.match(token.strip().lower())
    if not match:
        raise AssemblyError(f"bad register name {token!r}", line)
    bank, number = match.group(1), int(match.group(2))
    limit = NUM_INT_REGS if bank == "r" else NUM_FP_REGS
    if number >= limit:
        raise AssemblyError(f"register {token!r} out of range", line)
    return number if bank == "r" else FP_BASE + number


def is_fp(flat_register: int) -> bool:
    return flat_register >= FP_BASE


def register_name(flat_register: int) -> str:
    """Inverse of :func:`parse_register`."""
    if flat_register < 0 or flat_register >= FP_BASE + NUM_FP_REGS:
        raise ValueError(f"no such register: {flat_register}")
    if is_fp(flat_register):
        return f"f{flat_register - FP_BASE}"
    return f"r{flat_register}"


def isa_machine_config(base):
    """Adapt a :class:`repro.config.MachineConfig` to SimISA traces.

    Returns a copy of ``base`` with the SimISA logical register counts;
    everything else (specialization, policies, sizes) is preserved.
    """
    return base.with_changes(int_logical_registers=NUM_INT_REGS,
                             fp_logical_registers=NUM_FP_REGS)
