"""Functional executor for SimISA: runs a program, emits a trace.

The executor interprets a :class:`repro.isa.program.Program` with real
integer/FP register values and a sparse word-addressed memory, yielding
one :class:`repro.trace.model.TraceInstruction` per *executed* (i.e.
taken-path) instruction.  The resulting stream can be fed straight into
:class:`repro.core.processor.Processor` (with the SimISA register counts,
see :func:`repro.isa.registers.isa_machine_config`) - giving the simulator
a second, fully deterministic workload source that is genuine program
execution rather than statistics.

Semantics notes:

* integer arithmetic wraps to 64-bit two's complement;
* division by zero yields 0 (and ``fdiv`` by 0.0 yields 0.0) - SimISA
  has no traps;
* ``r0`` reads as zero and swallows writes;
* memory is initially zero-filled and word (8-byte) granular; misaligned
  addresses are rounded down.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional

from repro.errors import ExecutionError
from repro.isa.instructions import CONDITIONS, SHAPE_JUMP, SHAPE_NONE
from repro.isa.program import Instruction, Program
from repro.isa.registers import FP_BASE, NUM_FP_REGS, NUM_INT_REGS
from repro.trace.model import OpClass, TraceInstruction

_MASK64 = (1 << 64) - 1


def _wrap64(value: int) -> int:
    value &= _MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


class Executor:
    """Architectural state plus the interpreter loop."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.int_regs: List[int] = [0] * NUM_INT_REGS
        self.fp_regs: List[float] = [0.0] * NUM_FP_REGS
        self.memory: Dict[int, object] = {}
        self.pc_index = 0
        self.executed = 0
        self.halted = False

    # -- register access ---------------------------------------------------

    def read(self, flat: int):
        if flat >= FP_BASE:
            return self.fp_regs[flat - FP_BASE]
        return self.int_regs[flat] if flat else 0

    def write(self, flat: int, value) -> None:
        if flat >= FP_BASE:
            self.fp_regs[flat - FP_BASE] = float(value)
        elif flat:  # r0 swallows writes
            self.int_regs[flat] = _wrap64(int(value))

    # -- memory access ---------------------------------------------------

    @staticmethod
    def _word(addr: int) -> int:
        if addr < 0:
            raise ExecutionError(f"negative memory address {addr:#x}")
        return addr & ~7

    def load(self, addr: int):
        return self.memory.get(self._word(addr), 0)

    def store(self, addr: int, value) -> None:
        self.memory[self._word(addr)] = value

    # -- interpretation ---------------------------------------------------

    def _operand(self, inst: Instruction):
        """Second ALU operand: register value or immediate."""
        if inst.src2 is not None:
            return self.read(inst.src2)
        return inst.immediate or 0

    def _alu(self, inst: Instruction):
        mnemonic = inst.spec.mnemonic
        if mnemonic == "mov":
            return (self.read(inst.src1) if inst.src1 is not None
                    else inst.immediate or 0)
        if mnemonic == "neg":
            return -(self.read(inst.src1) if inst.src1 is not None
                     else inst.immediate or 0)
        left = self.read(inst.src1)
        right = self._operand(inst)
        if mnemonic == "add":
            return left + right
        if mnemonic == "sub":
            return left - right
        if mnemonic == "and":
            return left & right
        if mnemonic == "or":
            return left | right
        if mnemonic == "xor":
            return left ^ right
        if mnemonic == "sll":
            return left << (right & 63)
        if mnemonic == "srl":
            return (left & _MASK64) >> (right & 63)
        if mnemonic == "mul":
            return left * right
        if mnemonic == "div":
            return int(left / right) if right else 0
        raise ExecutionError(f"unhandled ALU mnemonic {mnemonic!r}")

    def _fpu(self, inst: Instruction) -> float:
        mnemonic = inst.spec.mnemonic
        if mnemonic == "fmov":
            return self.read(inst.src1)
        if mnemonic == "fsqrt":
            value = self.read(inst.src1)
            return math.sqrt(value) if value >= 0 else 0.0
        left = self.read(inst.src1)
        right = self.read(inst.src2)
        if mnemonic == "fadd":
            return left + right
        if mnemonic == "fsub":
            return left - right
        if mnemonic == "fmul":
            return left * right
        if mnemonic == "fdiv":
            return left / right if right else 0.0
        raise ExecutionError(f"unhandled FP mnemonic {mnemonic!r}")

    def step(self) -> Optional[TraceInstruction]:
        """Execute one instruction; None once halted / off the end."""
        program = self.program
        if self.halted or self.pc_index >= len(program.instructions):
            self.halted = True
            return None
        inst = program.instructions[self.pc_index]
        spec = inst.spec
        pc = program.pc_of_index(self.pc_index)
        next_index = self.pc_index + 1
        taken = False
        addr = 0

        if spec.mnemonic == "halt":
            self.halted = True
        elif spec.shape == SHAPE_NONE:
            pass  # nop
        elif spec.shape == SHAPE_JUMP:
            taken = True
            next_index = program.index_of_label(inst.target)
        elif spec.op_class == OpClass.BRANCH:
            taken = CONDITIONS[spec.condition](self.read(inst.src1))
            if taken:
                next_index = program.index_of_label(inst.target)
        elif spec.op_class == OpClass.LOAD:
            addr = self.read(inst.src1) + (inst.immediate or 0)
            self.write(inst.dest, self.load(addr))
        elif spec.op_class == OpClass.STORE:
            addr = self.read(inst.src1) + (inst.immediate or 0)
            self.store(addr, self.read(inst.src2))
        elif spec.fp_data:
            self.write(inst.dest, self._fpu(inst))
        else:
            self.write(inst.dest, self._alu(inst))

        self.pc_index = next_index
        self.executed += 1
        dyadic = inst.src1 is not None and inst.src2 is not None
        trace = TraceInstruction(
            op=spec.op_class,
            dest=inst.dest,
            src1=inst.src1,
            src2=inst.src2,
            pc=pc,
            taken=taken,
            addr=addr,
            commutative=spec.commutative and dyadic,
        )
        return trace

    def run(self, max_instructions: int = 1_000_000,
            ) -> Iterator[TraceInstruction]:
        """Yield the executed trace, up to ``max_instructions``."""
        while self.executed < max_instructions:
            trace = self.step()
            if trace is None:
                return
            yield trace


def execute_program(program: Program, max_instructions: int = 1_000_000,
                    ) -> Iterator[TraceInstruction]:
    """One-call helper: fresh executor, full trace."""
    return Executor(program).run(max_instructions)
