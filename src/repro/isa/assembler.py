"""Two-pass assembler for SimISA.

Source syntax::

    ; daxpy: y[i] += a * x[i]
    mov   r1, #0          ; i = 0
    mov   r2, #64         ; n = 64
    loop:
    ldf   f1, r3, #0      ; x[i]
    fmul  f2, f1, f0      ; a * x[i]
    ldf   f3, r4, #0
    fadd  f3, f3, f2
    stf   f3, r4, #0
    add   r3, r3, #8
    add   r4, r4, #8
    add   r1, r1, #1
    sub   r5, r1, r2
    blt   r5, loop
    halt

Conventions: one instruction or label per line; labels end with ``:``;
comments start with ``;`` or ``#`` (a ``#`` that directly precedes a
number is an immediate, not a comment); immediates accept decimal and
``0x`` hexadecimal, with optional leading ``-``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import AssemblyError
from repro.isa.instructions import (
    INSTRUCTION_SET,
    SHAPE_BRANCH,
    SHAPE_JUMP,
    SHAPE_MEM,
    SHAPE_NONE,
    SHAPE_RR,
    SHAPE_RRR,
)
from repro.isa.program import Instruction, Program
from repro.isa.registers import is_fp, parse_register

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_IMMEDIATE_RE = re.compile(r"^#(-?(?:0[xX][0-9a-fA-F]+|\d+))$")
_COMMENT_RE = re.compile(r";.*$|#(?![-0-9x]).*$")


def _strip_comment(line: str) -> str:
    return _COMMENT_RE.sub("", line).strip()


def _parse_immediate(token: str, line: int) -> Optional[int]:
    match = _IMMEDIATE_RE.match(token)
    if not match:
        return None
    text = match.group(1)
    return int(text, 16) if "x" in text.lower() else int(text, 10)


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",")] if rest else []


class Assembler:
    """Stateless two-pass assembler (a class only to group helpers)."""

    def assemble(self, source: str, name: str = "<memory>") -> Program:
        """Assemble ``source`` into a :class:`Program`.

        Raises :class:`repro.errors.AssemblyError` with the offending
        line number on any syntax problem.
        """
        program = Program(source_name=name)
        for number, raw in enumerate(source.splitlines(), start=1):
            text = _strip_comment(raw)
            if not text:
                continue
            label = _LABEL_RE.match(text)
            if label:
                label_name = label.group(1)
                if label_name in program.labels:
                    raise AssemblyError(
                        f"duplicate label {label_name!r}", number)
                program.labels[label_name] = len(program.instructions)
                continue
            program.instructions.append(self._parse_instruction(
                text, number))
        program.resolve_targets()
        return program

    # -- single-instruction parsing -------------------------------------

    def _parse_instruction(self, text: str, line: int) -> Instruction:
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        spec = INSTRUCTION_SET.get(mnemonic)
        if spec is None:
            raise AssemblyError(f"unknown mnemonic {mnemonic!r}", line)
        operands = _split_operands(rest)
        if spec.shape == SHAPE_RRR:
            return self._parse_rrr(spec, operands, line)
        if spec.shape == SHAPE_RR:
            return self._parse_rr(spec, operands, line)
        if spec.shape == SHAPE_MEM:
            return self._parse_mem(spec, operands, line)
        if spec.shape == SHAPE_BRANCH:
            return self._parse_branch(spec, operands, line)
        if spec.shape == SHAPE_JUMP:
            if len(operands) != 1:
                raise AssemblyError(f"{spec.mnemonic} takes one label",
                                    line)
            return Instruction(spec, target=operands[0], line=line)
        if operands:
            raise AssemblyError(f"{spec.mnemonic} takes no operands", line)
        return Instruction(spec, line=line)

    def _register(self, token: str, line: int, *, fp: bool) -> int:
        register = parse_register(token, line)
        if is_fp(register) != fp:
            bank = "floating-point" if fp else "integer"
            raise AssemblyError(
                f"expected a {bank} register, got {token!r}", line)
        return register

    def _reg_or_imm(self, token: str, line: int, *,
                    fp: bool) -> Tuple[Optional[int], Optional[int]]:
        immediate = _parse_immediate(token, line)
        if immediate is not None:
            if fp:
                raise AssemblyError(
                    "FP instructions take no immediates", line)
            return None, immediate
        return self._register(token, line, fp=fp), None

    def _parse_rrr(self, spec, operands: List[str],
                   line: int) -> Instruction:
        if len(operands) != 3:
            raise AssemblyError(
                f"{spec.mnemonic} takes dest, src1, src2", line)
        fp = spec.fp_data
        dest = self._register(operands[0], line, fp=fp)
        src1 = self._register(operands[1], line, fp=fp)
        src2, immediate = self._reg_or_imm(operands[2], line, fp=fp)
        return Instruction(spec, dest=dest, src1=src1, src2=src2,
                           immediate=immediate, line=line)

    def _parse_rr(self, spec, operands: List[str],
                  line: int) -> Instruction:
        if len(operands) != 2:
            raise AssemblyError(f"{spec.mnemonic} takes dest, src", line)
        fp = spec.fp_data
        dest = self._register(operands[0], line, fp=fp)
        src1, immediate = self._reg_or_imm(operands[1], line, fp=fp)
        return Instruction(spec, dest=dest, src1=src1,
                           immediate=immediate, line=line)

    def _parse_mem(self, spec, operands: List[str],
                   line: int) -> Instruction:
        if len(operands) != 3:
            raise AssemblyError(
                f"{spec.mnemonic} takes reg, base, #offset", line)
        data = self._register(operands[0], line, fp=spec.fp_data)
        base = self._register(operands[1], line, fp=False)
        offset = _parse_immediate(operands[2], line)
        if offset is None:
            raise AssemblyError("memory offset must be an immediate", line)
        if spec.mnemonic in ("ld", "ldf"):
            return Instruction(spec, dest=data, src1=base,
                               immediate=offset, line=line)
        # Stores: base address in src1, datum in src2 (trace convention).
        return Instruction(spec, src1=base, src2=data,
                           immediate=offset, line=line)

    def _parse_branch(self, spec, operands: List[str],
                      line: int) -> Instruction:
        if len(operands) != 2:
            raise AssemblyError(f"{spec.mnemonic} takes reg, label", line)
        src1 = self._register(operands[0], line, fp=False)
        return Instruction(spec, src1=src1, target=operands[1], line=line)


def assemble(source: str, name: str = "<memory>") -> Program:
    """Module-level convenience wrapper."""
    return Assembler().assemble(source, name)
