"""Instruction set of SimISA.

A small SPARC-flavoured load/store ISA - enough surface to write real
kernels (loops, pointer chasing, FP arithmetic) whose executed traces
exercise every operation class of the simulator.

Operand syntax (assembler):

=====================  ==============================  ==================
form                   example                         semantics
=====================  ==============================  ==================
three-register         ``add r3, r1, r2``              ``r3 = r1 + r2``
register-immediate     ``add r3, r1, #8``              ``r3 = r1 + 8``
move immediate         ``mov r3, #42``                 ``r3 = 42``
move register          ``mov r3, r1``                  ``r3 = r1``
load                   ``ld r3, r1, #16``              ``r3 = M[r1+16]``
store                  ``st r3, r1, #16``              ``M[r1+16] = r3``
FP load/store          ``ldf f3, r1, #0`` / ``stf``    FP data, int base
compare-and-branch     ``bgt r1, loop``                taken if r1 > 0
unconditional          ``jmp loop``                    always taken
=====================  ==============================  ==================

Conditional branches compare one register against zero (SPARC's
branch-on-register-contents form), making them *monadic* - the shape the
paper's allocation analysis cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.trace.model import OpClass

#: Operand-shape categories used by the assembler.
SHAPE_RRR = "rrr"        # dest, src1, src2|imm
SHAPE_RR = "rr"          # dest, src|imm        (mov, fmov, fsqrt, neg)
SHAPE_MEM = "mem"        # reg, base, #offset   (loads and stores)
SHAPE_BRANCH = "branch"  # src, label
SHAPE_JUMP = "jump"      # label
SHAPE_NONE = "none"      # halt, nop


@dataclass(frozen=True)
class InstructionSpec:
    """Static description of one mnemonic."""

    mnemonic: str
    op_class: OpClass
    shape: str
    commutative: bool = False
    fp_data: bool = False      # register operands are FP (loads: the datum)
    condition: Optional[str] = None  # branches: eq/ne/lt/ge/gt/le

    @property
    def is_branch(self) -> bool:
        return self.shape in (SHAPE_BRANCH, SHAPE_JUMP)


def _spec(mnemonic: str, op_class: OpClass, shape: str,
          **kwargs) -> Tuple[str, InstructionSpec]:
    return mnemonic, InstructionSpec(mnemonic, op_class, shape, **kwargs)


#: mnemonic -> spec
INSTRUCTION_SET: Dict[str, InstructionSpec] = dict((
    # integer ALU
    _spec("add", OpClass.IALU, SHAPE_RRR, commutative=True),
    _spec("sub", OpClass.IALU, SHAPE_RRR),
    _spec("and", OpClass.IALU, SHAPE_RRR, commutative=True),
    _spec("or", OpClass.IALU, SHAPE_RRR, commutative=True),
    _spec("xor", OpClass.IALU, SHAPE_RRR, commutative=True),
    _spec("sll", OpClass.IALU, SHAPE_RRR),
    _spec("srl", OpClass.IALU, SHAPE_RRR),
    _spec("mov", OpClass.IALU, SHAPE_RR),
    _spec("neg", OpClass.IALU, SHAPE_RR),
    _spec("mul", OpClass.IMULDIV, SHAPE_RRR, commutative=True),
    _spec("div", OpClass.IMULDIV, SHAPE_RRR),
    # memory
    _spec("ld", OpClass.LOAD, SHAPE_MEM),
    _spec("st", OpClass.STORE, SHAPE_MEM),
    _spec("ldf", OpClass.LOAD, SHAPE_MEM, fp_data=True),
    _spec("stf", OpClass.STORE, SHAPE_MEM, fp_data=True),
    # floating point
    _spec("fadd", OpClass.FPADD, SHAPE_RRR, commutative=True,
          fp_data=True),
    _spec("fsub", OpClass.FPADD, SHAPE_RRR, fp_data=True),
    _spec("fmul", OpClass.FPMUL, SHAPE_RRR, commutative=True,
          fp_data=True),
    _spec("fdiv", OpClass.FPDIV, SHAPE_RRR, fp_data=True),
    _spec("fsqrt", OpClass.FPDIV, SHAPE_RR, fp_data=True),
    _spec("fmov", OpClass.FPADD, SHAPE_RR, fp_data=True),
    # control
    _spec("beq", OpClass.BRANCH, SHAPE_BRANCH, condition="eq"),
    _spec("bne", OpClass.BRANCH, SHAPE_BRANCH, condition="ne"),
    _spec("blt", OpClass.BRANCH, SHAPE_BRANCH, condition="lt"),
    _spec("bge", OpClass.BRANCH, SHAPE_BRANCH, condition="ge"),
    _spec("bgt", OpClass.BRANCH, SHAPE_BRANCH, condition="gt"),
    _spec("ble", OpClass.BRANCH, SHAPE_BRANCH, condition="le"),
    _spec("jmp", OpClass.BRANCH, SHAPE_JUMP),
    # misc
    _spec("nop", OpClass.NOP, SHAPE_NONE),
    _spec("halt", OpClass.NOP, SHAPE_NONE),
))

#: Branch-condition evaluators (value compared against zero).
CONDITIONS = {
    "eq": lambda v: v == 0,
    "ne": lambda v: v != 0,
    "lt": lambda v: v < 0,
    "ge": lambda v: v >= 0,
    "gt": lambda v: v > 0,
    "le": lambda v: v <= 0,
}
