"""SARIF 2.1.0 rendering of analysis findings.

One ``run`` per invocation: the tool driver lists every registered rule
(id + short description + owning pass), each finding becomes a
``result`` with a physical location, and baselined findings carry a
``suppressions`` entry (kind ``external``) so SARIF viewers and code
scanning UIs hide them by default while novel findings stay visible.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.analyze.baseline import fingerprint
from repro.analyze.framework import AnalysisPass, Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

TOOL_NAME = "wsrs-analyze"


def _rule_catalogue(passes: Sequence[AnalysisPass]) -> List[Dict]:
    rules: List[Dict] = []
    seen: Set[str] = set()
    for entry in passes:
        for rule_id in sorted(entry.rules):
            if rule_id in seen:
                continue
            seen.add(rule_id)
            rules.append({
                "id": rule_id,
                "shortDescription": {"text": entry.rules[rule_id]},
                "properties": {"pass": entry.name},
            })
    return rules


def _result(finding: Finding, baselined: bool) -> Dict:
    properties: Dict[str, object] = {
        "pass": finding.pass_name,
        "fingerprint": fingerprint(finding),
    }
    if finding.config is not None:
        properties["config"] = finding.config
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": finding.severity,
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                },
                "region": {"startLine": max(1, finding.line)},
            },
        }],
        "partialFingerprints": {
            "wsrsAnalyze/v1": fingerprint(finding),
        },
        "properties": properties,
    }
    if baselined:
        result["suppressions"] = [{
            "kind": "external",
            "justification": "accepted by the committed analysis "
                             "baseline (analysis-baseline.json)",
        }]
    return result


def to_sarif(findings: Sequence[Finding],
             passes: Sequence[AnalysisPass],
             baselined: Optional[Sequence[Finding]] = None) -> Dict:
    """The SARIF 2.1.0 log for one analysis run.

    ``findings`` are the novel results; ``baselined`` (optional) are
    reported too, but marked suppressed.
    """
    results = [_result(finding, baselined=False) for finding in findings]
    results.extend(_result(finding, baselined=True)
                   for finding in (baselined or ()))
    gating = any(finding.gates for finding in findings)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "rules": _rule_catalogue(passes),
                },
            },
            "invocations": [{
                "executionSuccessful": not gating,
            }],
            "results": results,
        }],
    }
