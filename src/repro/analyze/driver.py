"""The ``wsrs analyze`` driver: run passes, diff the baseline, render.

One function, :func:`run_analysis`, backs three CLI commands -
``analyze`` itself plus the ``lint`` and ``docscheck`` aliases (which
pin ``passes=`` and keep their historical output/exit contract).

Exit code contract: 0 when every gating finding (severity ``error`` or
``warning``) is covered by the committed baseline, 1 otherwise.
``note`` findings never gate.  ``--write-baseline`` accepts the current
findings as the new baseline and exits 0.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analyze.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analyze.framework import (
    AnalysisContext,
    Finding,
    all_passes,
    get_pass,
    load_passes,
    run_passes,
)
from repro.analyze.sarif import to_sarif


def run_analysis(passes: Optional[Sequence[str]] = None,
                 paths: Sequence[str] = (),
                 root: str = ".",
                 fmt: str = "text",
                 out: Optional[str] = None,
                 baseline: Optional[str] = None,
                 use_baseline: bool = True,
                 update_baseline: bool = False,
                 sample_configs: int = 50,
                 list_passes: bool = False,
                 prog: str = "analyze") -> int:
    """Run the analyzer and print/return per the CLI contract."""
    load_passes()
    if list_passes:
        for entry in all_passes():
            print(f"{entry.name:14s} {entry.title}")
            for rule in sorted(entry.rules):
                print(f"    {rule:24s} {entry.rules[rule]}")
        return 0

    root_path = Path(root).resolve()
    try:
        selected = [get_pass(name) for name in passes] if passes \
            else all_passes()
    except ValueError as exc:
        print(f"{prog}: {exc}", file=sys.stderr)
        return 2
    context = AnalysisContext(
        root=root_path,
        paths=tuple(Path(p) for p in paths),
        sample_configs=sample_configs)
    findings = run_passes([entry.name for entry in selected], context)

    baseline_path = Path(baseline) if baseline \
        else root_path / DEFAULT_BASELINE_NAME
    if update_baseline:
        count = write_baseline(baseline_path, findings)
        print(f"{prog}: wrote {count} finding(s) to {baseline_path}")
        return 0
    known = {}
    if use_baseline:
        try:
            known = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"{prog}: {exc}", file=sys.stderr)
            return 2
    novel, baselined = partition(findings, known)
    gating = [finding for finding in novel if finding.gates]

    rendering = _render(fmt, prog, novel, baselined, selected)
    if out:
        Path(out).write_text(rendering + "\n", encoding="utf-8")
        print(f"{prog}: wrote {fmt} report to {out}")
        if gating:
            print(f"{prog}: {len(gating)} gating finding(s)")
        else:
            print(f"{prog}: clean")
    else:
        print(rendering)
    return 1 if gating else 0


def _render(fmt: str, prog: str, novel: List[Finding],
            baselined: List[Finding], selected) -> str:
    if fmt == "sarif":
        return json.dumps(to_sarif(novel, selected, baselined), indent=2)
    if fmt == "json":
        return json.dumps({
            "tool": "wsrs-analyze",
            "passes": [entry.name for entry in selected],
            "findings": [finding.to_json() for finding in novel],
            "baselined": [finding.to_json() for finding in baselined],
            "counts": {"novel": len(novel), "baselined": len(baselined)},
        }, indent=2)
    lines: List[str] = []
    for finding in novel:
        lines.append(str(finding))
    if baselined:
        lines.append(f"{prog}: {len(baselined)} baselined finding(s) "
                     f"suppressed")
    if novel:
        lines.append(f"{len(novel)} finding(s)")
    else:
        lines.append(f"{prog}: clean")
    return "\n".join(lines)
