"""Committed-baseline workflow: legacy findings don't block CI.

The baseline file (``analysis-baseline.json`` at the repository root)
records a fingerprint per accepted finding.  ``wsrs analyze`` fails only
on *novel* gating findings - anything already fingerprinted in the
baseline is reported as suppressed (and marked with a SARIF
``suppressions`` entry) instead of failing the run.  The workflow:

1. ``wsrs analyze`` reports new findings and exits non-zero;
2. fix them, or accept the legacy ones with
   ``wsrs analyze --write-baseline``;
3. commit the regenerated baseline file; CI is green again and any
   *new* finding still fails.

Fingerprints hash the pass, rule, normalized path and message - not the
line number - so unrelated edits that shift a finding up or down the
file do not invalidate the baseline.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.analyze.framework import Finding

#: Baseline schema version (bumped on incompatible format changes).
BASELINE_VERSION = 1

#: Default baseline file name, resolved against the analysis root.
DEFAULT_BASELINE_NAME = "analysis-baseline.json"


def fingerprint(finding: Finding) -> str:
    """Stable, line-independent identity of a finding."""
    identity = "|".join((finding.pass_name, finding.rule,
                         finding.path.replace("\\", "/"),
                         finding.message))
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: Union[str, Path]) -> Dict[str, Dict]:
    """fingerprint -> baseline entry; empty when the file is absent."""
    path = Path(path)
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has version {data.get('version')!r}; "
            f"this analyzer writes version {BASELINE_VERSION} "
            f"(regenerate with --write-baseline)")
    return {entry["fingerprint"]: entry for entry in data["findings"]}


def write_baseline(path: Union[str, Path],
                   findings: Sequence[Finding]) -> int:
    """Accept ``findings`` as the new baseline; returns the entry count."""
    entries = {}
    for finding in findings:
        print_ = fingerprint(finding)
        entries[print_] = {
            "fingerprint": print_,
            "pass": finding.pass_name,
            "rule": finding.rule,
            "path": finding.path.replace("\\", "/"),
            "message": finding.message,
            "severity": finding.severity,
        }
    payload = {
        "version": BASELINE_VERSION,
        "tool": "wsrs-analyze",
        "findings": [entries[key] for key in sorted(entries)],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return len(entries)


def partition(findings: Sequence[Finding], baseline: Dict[str, Dict]
              ) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (novel, baselined)."""
    novel: List[Finding] = []
    known: List[Finding] = []
    for finding in findings:
        if fingerprint(finding) in baseline:
            known.append(finding)
        else:
            novel.append(finding)
    return novel, known
