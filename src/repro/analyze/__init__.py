"""Unified static-analysis framework for the WS/RS repository.

A pluggable pass registry (:mod:`repro.analyze.framework`) unifies
every static check the repo runs - determinism lint, docs freshness,
the WS/RS config invariant rules, the SPEC-EQUIV codegen equivalence
checker for the config-specialized stepper, and the ASYNC-HAZARD
concurrency lint for the job service - behind one driver with text /
JSON / SARIF 2.1.0 output and a committed finding baseline
(``analysis-baseline.json``) so legacy findings never block CI.

See ``docs/static-analysis.md`` for the pass-author and baseline
workflow.
"""

from repro.analyze.baseline import (
    DEFAULT_BASELINE_NAME,
    fingerprint,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analyze.driver import run_analysis
from repro.analyze.framework import (
    AnalysisContext,
    AnalysisPass,
    Finding,
    all_passes,
    analysis_pass,
    filter_suppressed,
    get_pass,
    load_passes,
    run_passes,
)
from repro.analyze.sarif import to_sarif

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "all_passes",
    "analysis_pass",
    "filter_suppressed",
    "fingerprint",
    "get_pass",
    "load_baseline",
    "load_passes",
    "partition",
    "run_analysis",
    "run_passes",
    "to_sarif",
    "write_baseline",
]
