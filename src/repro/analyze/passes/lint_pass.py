"""The determinism/API lint (:mod:`repro.verify.lint`) as a pass.

``wsrs lint`` is a thin alias for ``wsrs analyze --pass lint``; the
rules and the AST machinery live in :mod:`repro.verify.lint`, this
module only adapts them to the framework's finding shape and default
target set (the ``repro`` package plus ``examples/`` and
``benchmarks/``).
"""

from __future__ import annotations

from typing import List

from repro.analyze.framework import AnalysisContext, Finding, analysis_pass
from repro.verify.lint import default_lint_targets, lint_paths

RULES = {
    "LINT-RANDOM": "call through the module-level random.* API (shared "
                   "unseeded global state)",
    "LINT-SET-ITER": "iteration over a set is hash-order dependent; a "
                     "cross-process determinism hazard",
    "LINT-PRIVATE-POKE": "direct access to renaming internals from "
                         "outside the rename package",
    "LINT-MUTABLE-DEFAULT": "mutable default argument",
}


@analysis_pass("lint", "determinism/API lint over the simulator sources",
               rules=RULES)
def run_lint(context: AnalysisContext) -> List[Finding]:
    targets = context.python_targets() or default_lint_targets(context.root)
    return [
        Finding(pass_name="lint", rule=finding.rule,
                path=context.relpath(finding.path), line=finding.line,
                message=finding.message, severity="warning")
        for finding in lint_paths(targets)
    ]
