"""ASYNC-HAZARD: concurrency lint for the service and fleet stacks.

The service (:mod:`repro.service`) and the fleet coordinator
(:mod:`repro.fleet`) run asyncio event loops whose tasks hand
simulation work to a process/thread executor, talk HTTP to worker
nodes, and mirror results into a disk-backed store.  Three hazard
classes recur in that shape, and each one has bitten real asyncio
services:

``ASYNC-BLOCKING-CALL``
    A blocking call inside an ``async def`` body: ``time.sleep``, sync
    file I/O (``open``, ``Path.read_text``/``write_text``, ``json.dump``
    / ``json.load`` against a file, ``os``/``shutil`` filesystem calls),
    ``subprocess`` invocations, synchronous HTTP
    (``http.client.HTTPConnection``/``HTTPSConnection``,
    ``urllib.request.urlopen`` - the coordinator's heartbeat and
    forwarding paths must use the async :mod:`repro.fleet.netio`
    client), or a call into the disk-backed result store
    (``store.put``/``get``/``keys``/``evict_expired``/``stats``).
    Any of these stalls the entire event loop - every other request,
    heartbeat and timeout in the process waits behind it.  Route the
    call through ``loop.run_in_executor(...)`` instead.
``ASYNC-LOCKED-AWAIT``
    An ``await`` inside a *synchronous* ``with <lock>:`` block.  A
    ``threading.Lock`` held across a suspension point blocks every
    other task (and thread) that needs the lock for as long as the
    awaited operation takes - and deadlocks outright if the awaited
    task needs the same lock.  Use ``asyncio.Lock`` with ``async
    with``, or drop the lock before awaiting.
``ASYNC-SHARED-STATE``
    An instance attribute written both from async (event-loop) context
    and from a function registered as an executor/thread/done-callback.
    Callbacks run off the loop thread; unsynchronized writes from both
    sides race.  Marshal the mutation back onto the loop (via the
    scheduler's queue or ``call_soon_threadsafe``) instead of writing
    in place.

Attribution is *innermost-def*: a sync helper nested inside an ``async
def`` is not flagged (the loop only stalls if the async frame itself
makes the call), and an async def nested inside a sync def is.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analyze.framework import AnalysisContext, Finding, analysis_pass

PASS_NAME = "async-hazard"

RULES = {
    "ASYNC-BLOCKING-CALL": "blocking call inside an async def stalls "
                           "the event loop",
    "ASYNC-LOCKED-AWAIT": "await while holding a synchronous lock",
    "ASYNC-SHARED-STATE": "attribute written from both async context "
                          "and an executor/thread callback",
}

#: ``module.function`` calls that block the calling thread.
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"),
    ("json", "dump"), ("json", "load"),
    ("os", "makedirs"), ("os", "remove"), ("os", "replace"),
    ("os", "rename"), ("os", "listdir"), ("os", "unlink"),
    ("shutil", "rmtree"), ("shutil", "copy"), ("shutil", "copytree"),
    ("subprocess", "run"), ("subprocess", "call"),
    ("subprocess", "check_call"), ("subprocess", "check_output"),
    ("subprocess", "Popen"),
}

#: Method names that are sync file I/O wherever they appear.
_BLOCKING_METHODS = {
    "read_text", "write_text", "read_bytes", "write_bytes",
}

#: Methods of the disk-backed result store (every one touches the
#: filesystem); flagged when the receiver chain mentions a store.
_STORE_METHODS = {"put", "get", "keys", "evict_expired", "stats"}

#: Synchronous HTTP entry points: constructing an ``http.client``
#: connection or calling ``urllib.request.urlopen`` blocks the thread
#: on the socket for the whole exchange.  Matched both as attribute
#: calls (``http.client.HTTPConnection(...)``) and as bare names
#: (``from http.client import HTTPConnection``).
_SYNC_HTTP_CALLS = {"HTTPConnection", "HTTPSConnection", "urlopen"}

#: Call shapes that register a function to run off the event loop:
#: (callable attribute name, positional index of the callback).
_CALLBACK_REGISTRARS = {
    "run_in_executor": 1,
    "add_done_callback": 0,
    "call_soon_threadsafe": 0,
}


def _receiver_names(node: ast.expr) -> List[str]:
    """All dotted names in a call receiver chain, lowercased."""
    names: List[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr.lower())
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id.lower())
    return names


def _blocking_reason(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open() is synchronous file I/O"
        if func.id in _SYNC_HTTP_CALLS:
            return (f"{func.id}() is synchronous HTTP; use the async "
                    f"netio client")
        return None
    if not isinstance(func, ast.Attribute):
        return None
    if isinstance(func.value, ast.Name):
        key = (func.value.id, func.attr)
        if key in _BLOCKING_MODULE_CALLS:
            return f"{func.value.id}.{func.attr}() blocks the thread"
    if func.attr in _SYNC_HTTP_CALLS:
        receiver = _receiver_names(func.value)
        if any(name in ("http", "client", "urllib", "request")
               for name in receiver):
            return (f".{func.attr}() is synchronous HTTP; use the "
                    f"async netio client")
    if func.attr in _BLOCKING_METHODS:
        return f".{func.attr}() is synchronous file I/O"
    if func.attr in _STORE_METHODS:
        receiver = _receiver_names(func.value)
        if any("store" in name for name in receiver):
            return (f"result-store .{func.attr}() does disk I/O; "
                    f"route it through run_in_executor")
    return None


def _callback_target(call: ast.Call) -> Optional[str]:
    """Name of a function/method registered to run off the loop."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    index = _CALLBACK_REGISTRARS.get(func.attr)
    argument: Optional[ast.expr] = None
    if index is not None and len(call.args) > index:
        argument = call.args[index]
    elif func.attr == "Thread" or (
            isinstance(func.value, ast.Name)
            and func.value.id == "threading" and func.attr == "Thread"):
        for keyword in call.keywords:
            if keyword.arg == "target":
                argument = keyword.value
    if argument is None:
        return None
    if isinstance(argument, ast.Attribute):
        return argument.attr
    if isinstance(argument, ast.Name):
        return argument.id
    return None


class _FunctionContextVisitor(ast.NodeVisitor):
    """Base visitor tracking the innermost enclosing def's asyncness."""

    def __init__(self) -> None:
        self._def_stack: List[bool] = []

    @property
    def in_async(self) -> bool:
        return bool(self._def_stack) and self._def_stack[-1]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._def_stack.append(False)
        self.generic_visit(node)
        self._def_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._def_stack.append(True)
        self.generic_visit(node)
        self._def_stack.pop()


class _HazardVisitor(_FunctionContextVisitor):
    """Blocking calls + locked awaits, innermost-def attributed."""

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(
            pass_name=PASS_NAME, rule=rule, path=self.path,
            line=node.lineno, message=message, severity="error"))

    def visit_Call(self, node: ast.Call) -> None:
        if self.in_async:
            reason = _blocking_reason(node)
            if reason is not None:
                self._flag(node, "ASYNC-BLOCKING-CALL",
                           f"{reason} inside an async def, stalling "
                           f"the event loop")
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        holds_lock = any(
            any("lock" in name for name in
                _receiver_names(item.context_expr))
            for item in node.items)
        if holds_lock and self.in_async:
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Await):
                        self._flag(
                            sub, "ASYNC-LOCKED-AWAIT",
                            "await while holding a synchronous lock; "
                            "every task needing the lock stalls for "
                            "the whole awaited operation")
        self.generic_visit(node)


class _AttributeWriteVisitor(_FunctionContextVisitor):
    """Per-class ``self.X`` write sites split by execution context."""

    def __init__(self) -> None:
        super().__init__()
        self._method_stack: List[str] = []
        # attr -> first async write line
        self.async_writes: Dict[str, int] = {}
        # method name -> [(attr, line)]
        self.sync_writes: Dict[str, List[Tuple[str, int]]] = {}

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if len(self._def_stack) == 0:
            self._method_stack.append(node.name)
            super().visit_FunctionDef(node)
            self._method_stack.pop()
        else:
            super().visit_FunctionDef(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if len(self._def_stack) == 0:
            self._method_stack.append(node.name)
            super().visit_AsyncFunctionDef(node)
            self._method_stack.pop()
        else:
            super().visit_AsyncFunctionDef(node)

    def _record(self, target: ast.expr, line: int) -> None:
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self._method_stack):
            return
        if self.in_async:
            self.async_writes.setdefault(target.attr, line)
        else:
            self.sync_writes.setdefault(self._method_stack[0], []).append(
                (target.attr, line))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target, node.lineno)
        self.generic_visit(node)


def _shared_state_findings(tree: ast.Module, path: str) -> List[Finding]:
    # Callback registrations anywhere in the module: a method name
    # handed to an executor / thread / done-callback runs off the loop.
    callbacks: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            target = _callback_target(node)
            if target:
                callbacks.add(target)
    if not callbacks:
        return []
    findings: List[Finding] = []
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        writes = _AttributeWriteVisitor()
        writes.visit(node)
        for method in sorted(callbacks):
            for attr, line in writes.sync_writes.get(method, []):
                async_line = writes.async_writes.get(attr)
                if async_line is None:
                    continue
                findings.append(Finding(
                    pass_name=PASS_NAME, rule="ASYNC-SHARED-STATE",
                    path=path, line=line,
                    message=f"self.{attr} is written here in "
                            f"{method}() (runs off the event loop as "
                            f"a registered callback) and from async "
                            f"context at line {async_line}; marshal "
                            f"the write through the loop instead",
                    severity="error"))
    return findings


def check_file(path: Path, display_path: str) -> List[Finding]:
    """All async-hazard findings for one source file."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    visitor = _HazardVisitor(display_path)
    visitor.visit(tree)
    findings = list(visitor.findings)
    findings.extend(_shared_state_findings(tree, display_path))
    return findings


@analysis_pass(PASS_NAME,
               "asyncio concurrency hazards in the service and fleet",
               rules=RULES)
def run_async_hazard(context: AnalysisContext) -> List[Finding]:
    targets: Sequence[Path] = context.python_targets()
    if not targets:
        targets = [directory for directory in (
            context.root / "src" / "repro" / "service",
            context.root / "src" / "repro" / "fleet",
        ) if directory.is_dir()]
    findings: List[Finding] = []
    for entry in targets:
        entry = Path(entry)
        sources = sorted(entry.rglob("*.py")) if entry.is_dir() else [entry]
        for source in sources:
            findings.extend(
                check_file(source, context.relpath(source)))
    return findings
