"""Documentation freshness (:mod:`repro.verify.docscheck`) as a pass.

``wsrs docscheck`` is a thin alias for ``wsrs analyze --pass
docscheck``.  The checker's kinds map onto stable rule ids so findings
can be baselined and suppressed like any other pass's.
"""

from __future__ import annotations

from typing import List

from repro.analyze.framework import AnalysisContext, Finding, analysis_pass
from repro.verify.docscheck import check_paths, check_tree

RULES = {
    "DOC-LINK": "relative markdown link target does not exist",
    "DOC-ANCHOR": "markdown anchor has no matching heading",
    "DOC-COMMAND": "documented wsrs command no longer parses",
    "DOC-CLI-COVERAGE": "CLI subcommand mentioned nowhere in the docs",
}


@analysis_pass("docscheck",
               "docs link/anchor freshness + CLI command replay",
               rules=RULES)
def run_docscheck(context: AnalysisContext) -> List[Finding]:
    targets = context.markdown_targets()
    if targets:
        doc_findings = check_paths(targets, context.root)
    else:
        doc_findings = check_tree(context.root)
    return [
        Finding(pass_name="docscheck",
                rule=f"DOC-{finding.kind.upper()}",
                path=context.relpath(finding.path), line=finding.line,
                message=f"[{finding.kind}] {finding.message}",
                severity="warning")
        for finding in doc_findings
    ]
