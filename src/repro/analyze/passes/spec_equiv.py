"""SPEC-EQUIV: static equivalence checking of the generated stepper.

The config-specialized third gear (:mod:`repro.core.specialize`)
*generates* a run loop per :class:`~repro.config.MachineConfig`, baking
every configuration constant in as a literal.  Runtime tests pin
bit-identical statistics on the six section-5 configurations - but a
codegen defect that only manifests on an unusual configuration (an odd
cluster mix, a shared divider, a tiny deadlock-prone register file)
would sail through.  This pass closes that hole statically: for every
section-5 config plus a seeded sample of the configuration space it
calls :func:`~repro.core.specialize.generate_stepper_source` and
verifies the *AST* against the reference semantics.

Rules
-----

``SPEC-EQUIV-LITERAL``
    Every baked literal matches the config: subset-routing divisors
    (the register-file layout the paper's argument is about), ROB /
    commit / issue / front widths, per-cluster FU counts, the cluster
    count, the misprediction penalty, the store-forward latency, the
    latency-table size, the inlined L1 probe geometry (offset shift,
    set mask and tag shift of the address split), and that the
    forward-delay table is loaded from the processor's precomputed
    ``FWD`` global rather than re-derived.
``SPEC-EQUIV-GUARD``
    The despecialization guards are present: the entry guard
    (sanitizer/observer/move-debt -> ``return False``) is the first
    statement, and on ``moves`` configurations the mid-run trip wire
    (``tripped``) exists and despecializes inside the loop.
``SPEC-EQUIV-WRITEBACK``
    The main loop is wrapped in ``try``/``finally``, the ``finally``
    block writes every mirrored local back to the machine, and no
    ``return`` escapes the writeback (the entry guard, which runs
    before any state is localized, is the only exception).
``SPEC-EQUIV-PURITY``
    No module-level ``random.*`` call and no set iteration reaches the
    generated body (the same determinism hazards ``wsrs lint`` bans in
    handwritten sources), and the body resolves globals only from the
    stepper's closed exec namespace.
``SPEC-EQUIV-RNG``
    The inlined steering code is *call-for-call* aligned with the
    reference allocation policy: the extracted steering block is
    compiled into a probe and driven with a recording RNG over dyadic /
    monadic / noadic instruction shapes; both the draw sequence
    (method + argument of every call) and the resulting
    ``(cluster, swapped)`` decision must match the policy object's.

Findings report the generated pseudo-file
(``<specialized:CONFIG>``), the line inside the generated source, and
the configuration name as provenance.
"""

from __future__ import annotations

import ast
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.allocation.policies import make_allocator
from repro.analyze.framework import AnalysisContext, Finding, analysis_pass
from repro.config import (
    ClusterConfig,
    MachineConfig,
    baseline_rr_256,
    figure4_configs,
    ws_rr,
    wsrs_rc,
    wsrs_rm,
)
from repro.core.lsq import WORD_BYTES
from repro.core.processor import _PROGRESS_LIMIT
from repro.core.specialize import (
    SPECIALIZED_FUNC_NAME,
    generate_stepper_source,
    generated_source_filename,
)
from repro.core.uop import UNKNOWN_CYCLE
from repro.errors import ConfigError
from repro.trace.model import OpClass, TraceInstruction

PASS_NAME = "spec-equiv"

RULES = {
    "SPEC-EQUIV-LITERAL": "a literal baked into the generated stepper "
                          "does not match the MachineConfig",
    "SPEC-EQUIV-GUARD": "a despecialization guard is missing from the "
                        "generated stepper",
    "SPEC-EQUIV-WRITEBACK": "the finally-writeback does not dominate "
                            "every exit of the generated stepper",
    "SPEC-EQUIV-PURITY": "generated code reaches module-level random.* "
                         "state, iterates a set, or touches an unknown "
                         "global",
    "SPEC-EQUIV-RNG": "the inlined steering diverges from the reference "
                      "allocation policy (draw sequence or decision)",
}

#: Everything the finally block must write back (mirrored locals).
_REQUIRED_WRITEBACK = (
    "proc.cycle", "proc._seq", "proc._move_debt",
    "proc._rename_blocked_until", "proc._waiting_branch",
    "proc._pending_decision", "proc.horizon_jumps",
    "proc.horizon_cycles_skipped",
    "frontend._pending", "frontend._exhausted", "frontend.branches",
    "frontend.mispredictions", "frontend.delivered",
    "memory.loads", "memory.stores", "memory.l1.hits",
    "memorder._issued_upto", "memorder._next_index",
    "renamer.renamed", "renamer.reg_stalls",
    "stats.cycles", "stats.committed", "stats.dispatched",
    "stats.issued", "stats.branches", "stats.mispredictions",
    "stats.loads", "stats.stores", "stats.store_forwards",
    "stats.l1_misses", "stats.l2_misses",
    "stats.stall_rob_full", "stats.stall_cluster_full",
    "stats.stall_no_register", "stats.stall_branch_penalty",
    "stats.stall_deadlock_moves", "stats.swapped_forms",
)


def _finding(config: MachineConfig, where, rule: str, message: str,
             severity: str = "error") -> Finding:
    line = where if isinstance(where, int) else getattr(where, "lineno", 1)
    return Finding(pass_name=PASS_NAME, rule=rule,
                   path=generated_source_filename(config), line=line,
                   message=message, severity=severity, config=config.name)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def check_config_codegen(config: MachineConfig) -> List[Finding]:
    """Generate the stepper for ``config`` and statically verify it."""
    return check_generated_source(generate_stepper_source(config), config)


def check_generated_source(source: str,
                           config: MachineConfig) -> List[Finding]:
    """Verify generated stepper ``source`` against ``config``.

    Exposed separately from :func:`check_config_codegen` so tests can
    corrupt the source text and pin the resulting findings.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [_finding(config, exc.lineno or 1, "SPEC-EQUIV-GUARD",
                         f"generated source does not parse: {exc.msg}")]
    func = None
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) \
                and node.name == SPECIALIZED_FUNC_NAME:
            func = node
    if func is None:
        return [_finding(config, 1, "SPEC-EQUIV-GUARD",
                         f"generated source defines no "
                         f"{SPECIALIZED_FUNC_NAME}() function")]
    findings: List[Finding] = []
    findings.extend(_check_guards(func, config))
    findings.extend(_check_writeback(func, config))
    findings.extend(_check_literals(func, config))
    findings.extend(_check_purity(func, config))
    findings.extend(_check_rng_alignment(func, config))
    return findings


@analysis_pass(PASS_NAME,
               "codegen equivalence of the config-specialized stepper",
               rules=RULES)
def run_spec_equiv(context: AnalysisContext) -> List[Finding]:
    findings: List[Finding] = []
    configs = list(figure4_configs())
    configs.extend(sampled_configs(context.sample_configs,
                                   context.sample_seed))
    for config in configs:
        findings.extend(check_config_codegen(config))
    return findings


# ---------------------------------------------------------------------------
# Config sampling: codegen coverage no runtime test ever executes
# ---------------------------------------------------------------------------

def sampled_configs(count: int = 50,
                    seed: int = 20_020) -> List[MachineConfig]:
    """A deterministic sample of the configuration space.

    Varies the factory family, register totals, widths, ROB size,
    penalty, divider arrangement, fastforward policy, deadlock policy
    and the cluster FU mix; invalid draws are discarded through
    :meth:`MachineConfig.validate`, so every returned config is one the
    simulator would accept.
    """
    rng = random.Random(seed)
    configs: List[MachineConfig] = []
    attempts = 0
    while len(configs) < count and attempts < count * 40:
        attempts += 1
        kind = rng.choice(("rr", "ws", "rc", "rm"))
        total = rng.choice((240, 320, 384, 512, 640, 768))
        overrides: Dict[str, object] = {
            "rob_size": rng.choice((112, 224, 256, 448)),
            "front_width": rng.choice((4, 8)),
            "commit_width": rng.choice((4, 8, 16)),
            "mispredict_penalty": rng.choice((10, 15, 16, 17, 18, 20)),
            "pipelined_muldiv": rng.random() < 0.5,
            "shared_muldiv": rng.random() < 0.5,
            "fastforward": rng.choice(("intra", "pairs", "complete")),
            "deadlock_policy": rng.choice(("none", "raise", "moves")),
        }
        if rng.random() < 0.3:
            overrides["cluster"] = ClusterConfig(
                issue_width=rng.choice((2, 4)),
                num_alus=rng.choice((2, 3)),
                num_lsus=rng.choice((0, 1)),
                num_fpus=rng.choice((1, 2)),
                max_inflight=rng.choice((28, 56)))
        if kind == "rr" and rng.random() < 0.3:
            overrides["allocation_policy"] = rng.choice(
                ("random", "least_loaded"))
        try:
            if kind == "rr":
                config = baseline_rr_256(**overrides)
            elif kind == "ws":
                config = ws_rr(total, **overrides)
            elif kind == "rc":
                config = wsrs_rc(total, **overrides)
            else:
                config = wsrs_rm(total, **overrides)
            config = config.with_changes(
                name=f"{config.name} sample{len(configs):02d}")
            config.validate()
        except ConfigError:
            continue
        configs.append(config)
    return configs


# ---------------------------------------------------------------------------
# Guards
# ---------------------------------------------------------------------------

def _body_after_docstring(func: ast.FunctionDef) -> List[ast.stmt]:
    body = list(func.body)
    if (body and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)):
        return body[1:]
    return body


def _is_entry_guard(stmt: ast.stmt) -> bool:
    return (isinstance(stmt, ast.If)
            and len(stmt.body) == 1 and not stmt.orelse
            and isinstance(stmt.body[0], ast.Return)
            and isinstance(stmt.body[0].value, ast.Constant)
            and stmt.body[0].value.value is False)


def _check_guards(func: ast.FunctionDef,
                  config: MachineConfig) -> List[Finding]:
    findings: List[Finding] = []
    body = _body_after_docstring(func)
    guard = body[0] if body else None
    if guard is not None and _is_entry_guard(guard):
        attrs = {node.attr for node in ast.walk(guard.test)
                 if isinstance(node, ast.Attribute)}
        missing = sorted({"sanitizer", "obs", "_move_debt"} - attrs)
        if missing:
            findings.append(_finding(
                config, guard, "SPEC-EQUIV-GUARD",
                f"entry guard does not test {', '.join(missing)}"))
    else:
        findings.append(_finding(
            config, guard or func, "SPEC-EQUIV-GUARD",
            "first statement is not the despecialization entry guard "
            "(if proc.sanitizer/proc.obs/proc._move_debt: return False)"))
    if config.deadlock_policy == "moves":
        trips = [node for node in ast.walk(func)
                 if isinstance(node, ast.Assign)
                 and any(isinstance(t, ast.Name) and t.id == "tripped"
                         for t in node.targets)
                 and isinstance(node.value, ast.Constant)
                 and node.value.value is True]
        if not trips:
            findings.append(_finding(
                config, func, "SPEC-EQUIV-GUARD",
                "deadlock policy 'moves' but no mid-run trip site "
                "(tripped = True) in the generated loop"))
        exits = [node for node in ast.walk(func)
                 if isinstance(node, ast.If)
                 and isinstance(node.test, ast.Name)
                 and node.test.id == "tripped"
                 and any(isinstance(sub, ast.Return)
                         and isinstance(sub.value, ast.Constant)
                         and sub.value.value is False
                         for stmt in node.body
                         for sub in ast.walk(stmt))]
        if not exits:
            findings.append(_finding(
                config, func, "SPEC-EQUIV-GUARD",
                "deadlock policy 'moves' but the loop never "
                "despecializes on a trip (if tripped: return False)"))
    return findings


# ---------------------------------------------------------------------------
# Writeback dominance
# ---------------------------------------------------------------------------

def _attr_chain(node: ast.expr) -> str:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _check_writeback(func: ast.FunctionDef,
                     config: MachineConfig) -> List[Finding]:
    findings: List[Finding] = []
    try_node = next((stmt for stmt in func.body
                     if isinstance(stmt, ast.Try)), None)
    if try_node is None or not try_node.finalbody:
        return [_finding(
            config, try_node or func, "SPEC-EQUIV-WRITEBACK",
            "main loop is not wrapped in try/finally; a guard trip or "
            "exception would lose the localized machine state")]

    written = set()
    for stmt in try_node.finalbody:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    chain = _attr_chain(target)
                    if chain:
                        written.add(chain)
    required = list(_REQUIRED_WRITEBACK)
    if config.allocation_policy == "round_robin":
        required.append("proc.allocator._next")
    missing = sorted(chain for chain in required if chain not in written)
    if missing:
        findings.append(_finding(
            config, try_node.finalbody[0], "SPEC-EQUIV-WRITEBACK",
            f"finally block never writes back: {', '.join(missing)}"))

    # Every exit must run the finally writeback: the only statement
    # allowed to return outside the Try is the entry guard, which runs
    # before any machine state is localized.
    for stmt in func.body:
        if stmt is try_node or _is_entry_guard(stmt):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Return):
                findings.append(_finding(
                    config, node, "SPEC-EQUIV-WRITEBACK",
                    "return outside the try/finally escapes the local "
                    "state writeback"))
    return findings


# ---------------------------------------------------------------------------
# Baked literals
# ---------------------------------------------------------------------------

class _SiteCollector(ast.NodeVisitor):
    """Every literal-bearing site class of the generated body."""

    def __init__(self) -> None:
        self.const_assigns: Dict[str, List[Tuple[ast.AST, int]]] = {}
        self.lat_sizes: List[Tuple[ast.AST, int]] = []
        self.len_rob_compares: List[Tuple[ast.AST, int]] = []
        self.inflight_compares: List[Tuple[ast.AST, int]] = []
        self.name_compares: List[Tuple[str, type, ast.AST, int]] = []
        self.floordivs: List[Tuple[ast.AST, int]] = []
        self.named_subs: List[Tuple[str, ast.AST, int]] = []
        self.const_left_adds: List[Tuple[ast.AST, int]] = []
        self.rc_adds: List[Tuple[ast.AST, int]] = []
        self.for_tuples: List[Tuple[ast.AST, Tuple[int, ...]]] = []
        self.stall_mults: List[Tuple[ast.AST, int]] = []
        self.rshifts: List[Tuple[str, ast.AST, int]] = []
        self.bitands: List[Tuple[str, ast.AST, int]] = []
        self.loaded_names: set = set()

    @staticmethod
    def _int_const(node: ast.expr) -> Optional[int]:
        if isinstance(node, ast.Constant) \
                and isinstance(node.value, int) \
                and not isinstance(node.value, bool):
            return node.value
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            value = self._int_const(node.value)
            if value is not None:
                self.const_assigns.setdefault(name, []).append(
                    (node, value))
            elif (name == "LAT" and isinstance(node.value, ast.BinOp)
                    and isinstance(node.value.op, ast.Mult)):
                size = self._int_const(node.value.right)
                if size is not None:
                    self.lat_sizes.append((node, size))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if (isinstance(node.target, ast.Name)
                and node.target.id.startswith("stall_")
                and isinstance(node.value, ast.BinOp)
                and isinstance(node.value.op, ast.Mult)):
            value = self._int_const(node.value.left)
            if value is not None:
                self.stall_mults.append((node, value))
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if len(node.ops) == 1 and len(node.comparators) == 1:
            value = self._int_const(node.comparators[0])
            if value is not None:
                left = node.left
                if (isinstance(left, ast.Call)
                        and isinstance(left.func, ast.Name)
                        and left.func.id == "len" and left.args
                        and isinstance(left.args[0], ast.Name)
                        and left.args[0].id == "rob"):
                    self.len_rob_compares.append((node, value))
                elif (isinstance(left, ast.Subscript)
                        and isinstance(left.value, ast.Name)
                        and left.value.id == "inflights"):
                    self.inflight_compares.append((node, value))
                elif isinstance(left, ast.Name):
                    self.name_compares.append(
                        (left.id, type(node.ops[0]), node, value))
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        right = self._int_const(node.right)
        if isinstance(node.op, ast.FloorDiv) and right is not None:
            self.floordivs.append((node, right))
        elif isinstance(node.op, ast.RShift) and right is not None \
                and isinstance(node.left, ast.Name):
            self.rshifts.append((node.left.id, node, right))
        elif isinstance(node.op, ast.BitAnd) and right is not None \
                and isinstance(node.left, ast.Name):
            self.bitands.append((node.left.id, node, right))
        elif isinstance(node.op, ast.Sub) and right is not None \
                and isinstance(node.left, ast.Name):
            self.named_subs.append((node.left.id, node, right))
        elif isinstance(node.op, ast.Add):
            left = self._int_const(node.left)
            if left is not None:
                self.const_left_adds.append((node, left))
            elif (right is not None and isinstance(node.left, ast.Name)
                    and node.left.id == "_rc"):
                self.rc_adds.append((node, right))
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.iter, ast.Tuple):
            elements = [self._int_const(elt) for elt in node.iter.elts]
            if all(value is not None for value in elements):
                self.for_tuples.append((node.iter, tuple(elements)))
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.loaded_names.add(node.id)
        self.generic_visit(node)


def _check_literals(func: ast.FunctionDef,
                    config: MachineConfig) -> List[Finding]:
    sites = _SiteCollector()
    sites.visit(func)
    findings: List[Finding] = []
    cluster = config.cluster

    def bad(node, what: str, found, expected) -> None:
        findings.append(_finding(
            config, node, "SPEC-EQUIV-LITERAL",
            f"baked {what} is {found}, MachineConfig expects {expected}"))

    def require(present: Sequence, what: str) -> bool:
        if not present:
            findings.append(_finding(
                config, func, "SPEC-EQUIV-LITERAL",
                f"no baked {what} site found in the generated stepper"))
            return False
        return True

    # ROB capacity (horizon probe + rename loop).
    if require(sites.len_rob_compares, "len(rob) >= rob_size"):
        for node, value in sites.len_rob_compares:
            if value != config.rob_size:
                bad(node, "ROB capacity", value, config.rob_size)

    # Issue/front budgets come as exactly one site each, plus the
    # zero-clear on the hoisted branch-stall path of the rename loop.
    budgets = sites.const_assigns.get("_budget", [])
    expected_budgets = sorted((0, cluster.issue_width,
                               config.front_width))
    if sorted(value for _, value in budgets) != expected_budgets:
        bad(budgets[0][0] if budgets else func,
            "issue/front width budgets",
            sorted(value for _, value in budgets), expected_budgets)

    for name, what, expected in (
            ("_n", "commit width", config.commit_width),
            ("_alus", "per-cluster ALU count", cluster.num_alus),
            ("_fpus", "per-cluster FPU count", cluster.num_fpus),
            ("_lat", "store-forward L1 hit latency",
             config.memory.l1.hit_latency),
            ("wake", "event-horizon sentinel", UNKNOWN_CYCLE)):
        assigns = sites.const_assigns.get(name, [])
        if require(assigns, what):
            for node, value in assigns:
                if value != expected:
                    bad(node, what, value, expected)

    # Latency table sized for every OpClass.
    lat_size = max(int(op) for op in OpClass) + 1
    if require(sites.lat_sizes, "latency table allocation"):
        for node, value in sites.lat_sizes:
            if value != lat_size:
                bad(node, "latency table size", value, lat_size)

    # Forward-delay table must come from the processor's precomputed
    # global, never be re-derived inline.
    if "FWD" not in sites.loaded_names:
        findings.append(_finding(
            config, func, "SPEC-EQUIV-LITERAL",
            "forward-delay rows are not sourced from the processor's "
            "precomputed FWD table"))

    # Per-cluster window bound.
    if require(sites.inflight_compares, "cluster window bound"):
        for node, value in sites.inflight_compares:
            if value != cluster.max_inflight:
                bad(node, "cluster window bound", value,
                    cluster.max_inflight)

    # Cluster count: every baked iteration tuple enumerates the
    # clusters in order.
    expected_range = tuple(range(config.num_clusters))
    if require(sites.for_tuples, "cluster iteration tuple"):
        for node, elements in sites.for_tuples:
            if elements != expected_range:
                bad(node, "cluster iteration tuple", elements,
                    expected_range)

    # Misprediction penalty (the only `_rc + const` site).
    if require(sites.rc_adds, "misprediction penalty"):
        for node, value in sites.rc_adds:
            if value != config.mispredict_penalty:
                bad(node, "misprediction penalty", value,
                    config.mispredict_penalty)

    # Horizon-jump stall accounting multiplies by the front width.
    for node, value in sites.stall_mults:
        if value != config.front_width:
            bad(node, "stall-accounting front width", value,
                config.front_width)

    # Inlined L1 probe geometry: the address split must match the
    # configured cache (offset shift on ``_addr``, set mask and tag
    # shift on ``_line``).
    l1 = config.memory.l1
    l1_off = l1.line_bytes.bit_length() - 1
    l1_mask = l1.num_sets - 1
    l1_setbits = l1_mask.bit_length()
    addr_shifts = [(node, value) for name, node, value in sites.rshifts
                   if name == "_addr"]
    line_shifts = [(node, value) for name, node, value in sites.rshifts
                   if name == "_line"]
    line_masks = [(node, value) for name, node, value in sites.bitands
                  if name == "_line"]
    if require(addr_shifts, "L1 line-offset shift"):
        for node, value in addr_shifts:
            if value != l1_off:
                bad(node, "L1 line-offset shift", value, l1_off)
    if require(line_shifts, "L1 tag shift"):
        for node, value in line_shifts:
            if value != l1_setbits:
                bad(node, "L1 tag shift", value, l1_setbits)
    if require(line_masks, "L1 set mask"):
        for node, value in line_masks:
            if value != l1_mask:
                bad(node, "L1 set mask", value, l1_mask)

    # Register-file geometry: floor-divisions may only use the word
    # size, the divider-pair stride, or the subset sizes; specialized
    # machines must actually use both subset sizes (the routing
    # arithmetic the paper is about).
    allowed = {WORD_BYTES}
    if config.shared_muldiv:
        allowed.add(2)
    if config.num_subsets > 1:
        allowed.update((config.int_subset_size, config.fp_subset_size))
    for node, value in sites.floordivs:
        if value not in allowed:
            bad(node, "floor-division stride", value, sorted(allowed))
    if config.num_subsets > 1:
        present = {value for _, value in sites.floordivs}
        for needed, label in (
                (config.int_subset_size, "int subset size"),
                (config.fp_subset_size, "fp subset size")):
            if needed not in present:
                findings.append(_finding(
                    config, func, "SPEC-EQUIV-LITERAL",
                    f"subset-routing divisor for the {label} ({needed}) "
                    f"never appears; register-file routing is not "
                    f"specialized"))

    # Register-class split points.
    for name, _, node, value in sites.name_compares:
        if name in ("pdest", "pold"):
            if value != config.int_physical_registers:
                bad(node, "int/fp physical split", value,
                    config.int_physical_registers)
        elif name in ("dest", "src1", "src2"):
            if value != config.int_logical_registers:
                bad(node, "int/fp logical split", value,
                    config.int_logical_registers)
        elif name in ("skipped", "idle_events"):
            if value != _PROGRESS_LIMIT:
                bad(node, "progress limit", value, _PROGRESS_LIMIT)
        elif name == "horizon":
            if value != UNKNOWN_CYCLE:
                bad(node, "event-horizon sentinel", value, UNKNOWN_CYCLE)
        elif name == "rr_next":
            if value != config.num_clusters:
                bad(node, "round-robin wrap", value, config.num_clusters)
    for name, node, value in sites.named_subs:
        if name in ("pdest", "pold"):
            if value != config.int_physical_registers:
                bad(node, "int/fp physical split", value,
                    config.int_physical_registers)
        elif name in ("dest", "src1", "src2"):
            if value != config.int_logical_registers:
                bad(node, "int/fp logical split", value,
                    config.int_logical_registers)
    for node, value in sites.const_left_adds:
        if value != config.int_physical_registers:
            bad(node, "fp physical-register base", value,
                config.int_physical_registers)
    return findings


# ---------------------------------------------------------------------------
# Purity
# ---------------------------------------------------------------------------

def _check_purity(func: ast.FunctionDef,
                  config: MachineConfig) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"):
            findings.append(_finding(
                config, node, "SPEC-EQUIV-PURITY",
                f"module-level random.{node.func.attr}() in generated "
                f"code; draws must go through the allocator's own RNG"))
        iters: List[ast.expr] = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for candidate in iters:
            is_set = isinstance(candidate, (ast.Set, ast.SetComp)) or (
                isinstance(candidate, ast.Call)
                and isinstance(candidate.func, ast.Name)
                and candidate.func.id in ("set", "frozenset"))
            if is_set:
                findings.append(_finding(
                    config, candidate, "SPEC-EQUIV-PURITY",
                    "iteration over a set in generated code is "
                    "hash-order dependent"))
    return findings


# ---------------------------------------------------------------------------
# RNG draw-site alignment
# ---------------------------------------------------------------------------

class _RecordingRng:
    """Scripted random source recording every draw (method + argument)."""

    def __init__(self, script: Sequence[int]) -> None:
        self._script = list(script)
        self.calls: List[Tuple[str, int]] = []

    def _next(self) -> int:
        return self._script.pop(0) if self._script else 0

    def getrandbits(self, bits: int) -> int:
        self.calls.append(("getrandbits", bits))
        return self._next() & ((1 << bits) - 1)

    def randrange(self, bound: int) -> int:
        self.calls.append(("randrange", bound))
        return self._next() % bound


def _find_alloc_if(func: ast.FunctionDef) -> Optional[ast.If]:
    """The rename-loop steering block: ``if pending_decision is None``
    whose body *assigns* the decision (the horizon probe only reads
    it)."""
    for node in ast.walk(func):
        if (isinstance(node, ast.If)
                and isinstance(node.test, ast.Compare)
                and isinstance(node.test.left, ast.Name)
                and node.test.left.id == "pending_decision"
                and len(node.test.ops) == 1
                and isinstance(node.test.ops[0], ast.Is)):
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Assign) and any(
                            isinstance(target, ast.Name)
                            and target.id == "pending_decision"
                            for target in sub.targets):
                        return node
    return None


def _build_probe(alloc_body: Sequence[ast.stmt]):
    lines = ["def _probe(inst=None, int_map=None, fp_map=None, "
             "rng_bits=None, rng_rand=None, rr_next=0, allocate=None, "
             "subset_of=None, inflights=None):",
             "    pending_decision = None"]
    for stmt in alloc_body:
        for line in ast.unparse(stmt).splitlines():
            lines.append("    " + line)
    lines.append("    return pending_decision, rr_next")
    namespace: Dict[str, object] = {}
    exec(compile("\n".join(lines), "<spec-equiv-probe>", "exec"),
         namespace)
    return namespace["_probe"]


def _register_maps(config: MachineConfig
                   ) -> Tuple[List[int], List[int]]:
    """Map tables placing logical register ``i`` in subset ``i % n``."""
    subsets = config.num_subsets
    int_map = [(i % subsets) * config.int_subset_size
               for i in range(config.int_logical_registers)]
    fp_map = [(i % subsets) * config.fp_subset_size
              for i in range(config.fp_logical_registers)]
    return int_map, fp_map


def _instruction_shapes(config: MachineConfig) -> List[TraceInstruction]:
    """Dyadic/monadic/noadic shapes across operand subsets and files."""
    logical = config.int_logical_registers

    def int_reg(subset: int) -> int:
        return subset

    def fp_reg(subset: int) -> int:
        return logical + subset

    shapes: List[TraceInstruction] = []

    def add(src1: Optional[int], src2: Optional[int]) -> None:
        shapes.append(TraceInstruction(
            op=OpClass.IALU, dest=1, src1=src1, src2=src2))

    for first in range(4):
        for second in range(4):
            add(int_reg(first), int_reg(second))
    for first, second in ((0, 1), (2, 3), (1, 2)):
        add(fp_reg(first), fp_reg(second))
    for first, second in ((0, 3), (3, 0)):
        add(int_reg(first), fp_reg(second))
    for subset in range(4):
        add(int_reg(subset), None)
        add(None, int_reg(subset))
    for subset in (0, 2):
        add(fp_reg(subset), None)
    add(None, None)
    return shapes


_SCRIPTS = ((0, 0, 0), (1, 1, 1), (1, 0, 1), (0, 1, 0))


def _check_rng_alignment(func: ast.FunctionDef,
                         config: MachineConfig) -> List[Finding]:
    alloc = _find_alloc_if(func)
    if alloc is None:
        return [_finding(config, func, "SPEC-EQUIV-RNG",
                         "no steering block (pending_decision is None) "
                         "found in the rename loop")]
    policy = config.allocation_policy
    inline = policy in ("random_commutative", "random_monadic") \
        and config.num_clusters == 4
    if policy == "round_robin":
        return _check_round_robin(alloc, config)
    if inline:
        return _check_inlined_policy(alloc, config)
    return _check_allocate_call(alloc, config)


def _check_allocate_call(alloc: ast.If,
                         config: MachineConfig) -> List[Finding]:
    body = alloc.body
    if len(body) == 1 and isinstance(body[0], ast.Assign):
        value = body[0].value
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "allocate"
                and [arg.id for arg in value.args
                     if isinstance(arg, ast.Name)]
                == ["inst", "subset_of", "inflights"]):
            return []
    return [_finding(
        config, alloc, "SPEC-EQUIV-RNG",
        f"policy {config.allocation_policy!r} must delegate to "
        f"allocate(inst, subset_of, inflights); the steering block "
        f"does something else")]


def _check_round_robin(alloc: ast.If,
                       config: MachineConfig) -> List[Finding]:
    try:
        probe = _build_probe(alloc.body)
    except Exception as exc:
        return [_finding(config, alloc, "SPEC-EQUIV-RNG",
                         f"steering block does not compile as a probe: "
                         f"{exc}")]
    inst = TraceInstruction(op=OpClass.IALU, dest=1, src1=2, src2=3)
    recorder = _RecordingRng(())
    clusters = config.num_clusters
    for cursor in range(clusters):
        reference = make_allocator("round_robin", num_clusters=clusters,
                                   seed=0)
        reference._next = cursor
        expected = reference.allocate(inst)
        try:
            decision, next_cursor = probe(
                inst=inst, rr_next=cursor,
                rng_bits=recorder.getrandbits,
                rng_rand=recorder.randrange)
        except Exception as exc:
            return [_finding(config, alloc, "SPEC-EQUIV-RNG",
                             f"round-robin steering probe crashed: "
                             f"{exc}")]
        if recorder.calls:
            return [_finding(
                config, alloc, "SPEC-EQUIV-RNG",
                f"round-robin steering drew from the RNG "
                f"({recorder.calls[0][0]}); the reference policy is "
                f"draw-free")]
        if (decision is None
                or (decision[0], bool(decision[1])) != expected
                or next_cursor != reference._next):
            return [_finding(
                config, alloc, "SPEC-EQUIV-RNG",
                f"round-robin decision from cursor {cursor} is "
                f"{decision} (next {next_cursor}); the reference "
                f"policy yields {expected} (next {reference._next})")]
    return []


def _check_inlined_policy(alloc: ast.If,
                          config: MachineConfig) -> List[Finding]:
    try:
        probe = _build_probe(alloc.body)
    except Exception as exc:
        return [_finding(config, alloc, "SPEC-EQUIV-RNG",
                         f"steering block does not compile as a probe: "
                         f"{exc}")]
    int_map, fp_map = _register_maps(config)
    logical = config.int_logical_registers

    def subset_of(register: int) -> int:
        if register < logical:
            return int_map[register] // config.int_subset_size
        return fp_map[register - logical] // config.fp_subset_size

    inflights = [0] * config.num_clusters
    for inst in _instruction_shapes(config):
        for script in _SCRIPTS:
            generated = _RecordingRng(script)
            try:
                decision, _ = probe(
                    inst=inst, int_map=int_map, fp_map=fp_map,
                    rng_bits=generated.getrandbits,
                    rng_rand=generated.randrange)
            except Exception as exc:
                return [_finding(
                    config, alloc, "SPEC-EQUIV-RNG",
                    f"steering probe crashed on "
                    f"(src1={inst.src1}, src2={inst.src2}): {exc}")]
            reference = make_allocator(config.allocation_policy,
                                       num_clusters=config.num_clusters,
                                       seed=0)
            recorder = _RecordingRng(script)
            reference.rng = recorder
            expected = reference.allocate(inst, subset_of, inflights)
            shape = (f"src1={inst.src1}, src2={inst.src2}, "
                     f"script={script}")
            if generated.calls != recorder.calls:
                return [_finding(
                    config, alloc, "SPEC-EQUIV-RNG",
                    f"RNG draw sequence diverges on ({shape}): "
                    f"generated {generated.calls}, reference "
                    f"{recorder.calls}")]
            if (decision is None
                    or (decision[0], bool(decision[1]))
                    != (expected[0], bool(expected[1]))):
                return [_finding(
                    config, alloc, "SPEC-EQUIV-RNG",
                    f"steering decision diverges on ({shape}): "
                    f"generated {decision}, reference {expected}")]
    return []
