"""Built-in analysis passes.

Importing this package registers every pass with the framework
registry; the modules themselves only use the :func:`analysis_pass`
decorator, exactly like a third-party ``wsrs.analysis_passes`` entry
point would.
"""

from repro.analyze.passes import (  # noqa: F401
    async_hazard,
    config_pass,
    docs_pass,
    lint_pass,
    spec_equiv,
)
