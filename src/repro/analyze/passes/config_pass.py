"""The static WS/RS invariant rules (:mod:`repro.verify.rules`) as a pass.

Runs every shipped configuration (the section-5 set plus the noWS-2
reference machine and the 7-cluster extension) through the config rule
registry.  ``wsrs verify`` keeps its own per-config report format; this
pass folds the same checks into the unified analyzer so a rule
violation in a shipped configuration fails the ``analyze`` CI job too.
"""

from __future__ import annotations

from typing import List

from repro.analyze.framework import AnalysisContext, Finding, analysis_pass
from repro.verify.rules import all_rules, check_config

RULES = {rule.rule_id: rule.title for rule in all_rules()}


@analysis_pass("config-rules",
               "static WS/RS invariant rules on every shipped config",
               rules=RULES)
def run_config_rules(context: AnalysisContext) -> List[Finding]:
    from repro.config import (
        figure4_configs,
        two_cluster_4way,
        wsrs_seven_cluster,
    )

    configs = list(figure4_configs())
    configs.append(two_cluster_4way())
    configs.append(wsrs_seven_cluster())
    findings: List[Finding] = []
    for config in configs:
        for violation in check_config(config):
            findings.append(Finding(
                pass_name="config-rules", rule=violation.rule,
                path="src/repro/config.py", line=1,
                message=f"{config.name}: {violation.message}",
                severity="error", config=config.name))
    return findings
