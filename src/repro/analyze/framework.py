"""Pluggable static-analysis framework: passes, findings, suppression.

The analyzer (``wsrs analyze``) is a registry of *passes*.  Each pass is
a plain function taking an :class:`AnalysisContext` and returning a list
of :class:`Finding` objects; the :func:`analysis_pass` decorator
registers it under a stable name together with its rule catalogue (the
rule metadata feeds the SARIF output).  Third-party packages can ship
passes through the ``wsrs.analysis_passes`` entry-point group - loading
the entry point must execute the decorator, exactly like the built-in
passes in :mod:`repro.analyze.passes`.

Findings carry a severity: ``error`` and ``warning`` gate the run (CI
fails on any such finding not in the committed baseline, see
:mod:`repro.analyze.baseline`); ``note`` is informational.  A finding on
a real source line can be silenced in place with a suppression comment::

    for key in hazard_set:  # wsrs: ignore[LINT-SET-ITER]

``# wsrs: ignore`` without a rule list suppresses every rule on that
line.  Suppressions only apply to findings whose path is a readable
file - findings against generated pseudo-files (the specialized
stepper's ``<specialized:...>`` sources) cannot be suppressed in place
and must go through the baseline instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Finding severities, most severe first.  ``note`` never gates.
SEVERITIES = ("error", "warning", "note")

#: Entry-point group third-party analysis passes register under.
ENTRY_POINT_GROUP = "wsrs.analysis_passes"

_SUPPRESS_RE = re.compile(
    r"#\s*wsrs:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_, -]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One analysis result: a rule violated at a source location."""

    pass_name: str
    rule: str
    path: str
    line: int
    message: str
    severity: str = "warning"
    #: Machine-configuration provenance (SPEC-EQUIV findings name the
    #: config whose generated stepper diverged).
    config: Optional[str] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; "
                f"choose from {SEVERITIES}")

    def __str__(self) -> str:
        provenance = f" [config: {self.config}]" if self.config else ""
        return (f"{self.path}:{self.line}: {self.rule}: "
                f"{self.message}{provenance}")

    @property
    def gates(self) -> bool:
        """Whether this finding fails the run (notes are informational)."""
        return self.severity in ("error", "warning")

    def to_json(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "pass": self.pass_name, "rule": self.rule, "path": self.path,
            "line": self.line, "message": self.message,
            "severity": self.severity,
        }
        if self.config is not None:
            record["config"] = self.config
        return record


@dataclass(frozen=True)
class AnalysisContext:
    """What a pass may look at, and how hard it should look.

    ``paths`` are explicit targets from the command line; every pass
    filters out the entries it understands (Python files/directories for
    the source passes, markdown files for docscheck) and falls back to
    its default target set when none remain.  ``sample_configs`` bounds
    the SPEC-EQUIV sweep of the configuration space.
    """

    root: Path
    paths: Tuple[Path, ...] = ()
    sample_configs: int = 50
    sample_seed: int = 20_020

    def python_targets(self) -> List[Path]:
        """Explicit targets for source passes (dirs + .py files)."""
        return [path for path in self.paths
                if path.is_dir() or path.suffix == ".py"]

    def markdown_targets(self) -> List[Path]:
        """Explicit targets for documentation passes."""
        return [path for path in self.paths if path.suffix == ".md"]

    def relpath(self, path) -> str:
        """``path`` relative to the analysis root when possible."""
        try:
            return Path(path).resolve().relative_to(
                self.root.resolve()).as_posix()
        except ValueError:
            return str(path)


@dataclass(frozen=True)
class AnalysisPass:
    """A registered pass: metadata plus the function that runs it."""

    name: str
    title: str
    run: Callable[[AnalysisContext], List[Finding]]
    #: rule id -> one-line description (feeds the SARIF rule catalogue).
    rules: Dict[str, str] = field(default_factory=dict)


_REGISTRY: Dict[str, AnalysisPass] = {}
_LOADED = False


def analysis_pass(name: str, title: str,
                  rules: Optional[Dict[str, str]] = None):
    """Decorator registering ``func`` as the analysis pass ``name``."""

    def register(func: Callable[[AnalysisContext], List[Finding]]):
        if name in _REGISTRY:
            raise ValueError(f"analysis pass {name!r} already registered")
        _REGISTRY[name] = AnalysisPass(
            name=name, title=title, run=func, rules=dict(rules or {}))
        return func

    return register


def load_passes() -> None:
    """Import the built-in passes and any entry-point passes (once)."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    import repro.analyze.passes  # noqa: F401  (registers on import)

    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py3.7 fallback
        return
    try:
        points = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - pre-3.10 selection API
        points = entry_points().get(ENTRY_POINT_GROUP, ())
    for point in points:  # pragma: no cover - none ship in-repo
        try:
            point.load()  # loading runs the @analysis_pass decorator
        except Exception:
            # A broken third-party pass must not take the analyzer down;
            # its absence shows up in --list-passes.
            continue


def all_passes() -> List[AnalysisPass]:
    """Every registered pass, name-ordered."""
    load_passes()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_pass(name: str) -> AnalysisPass:
    load_passes()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown analysis pass {name!r}; choose from {known}") \
            from None


def run_passes(names: Optional[Sequence[str]],
               context: AnalysisContext) -> List[Finding]:
    """Run the named passes (default: all), suppression-filtered."""
    selected = ([get_pass(name) for name in names] if names
                else all_passes())
    findings: List[Finding] = []
    for entry in selected:
        findings.extend(entry.run(context))
    findings = filter_suppressed(findings, context.root)
    findings.sort(key=lambda finding: (finding.path, finding.line,
                                       finding.pass_name, finding.rule,
                                       finding.message))
    return findings


def filter_suppressed(findings: Sequence[Finding],
                      root: Path) -> List[Finding]:
    """Drop findings whose source line carries a suppression comment."""
    cache: Dict[Path, Optional[List[str]]] = {}
    kept: List[Finding] = []
    for finding in findings:
        if not _suppressed(finding, root, cache):
            kept.append(finding)
    return kept


def _suppressed(finding: Finding, root: Path,
                cache: Dict[Path, Optional[List[str]]]) -> bool:
    path = Path(finding.path)
    if not path.is_absolute():
        path = root / path
    lines = cache.get(path)
    if path not in cache:
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            lines = None
        cache[path] = lines
    if lines is None or not 1 <= finding.line <= len(lines):
        return False
    match = _SUPPRESS_RE.search(lines[finding.line - 1])
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True
    return finding.rule in {rule.strip() for rule in rules.split(",")}
