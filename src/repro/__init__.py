"""Reproduction of *Register Write Specialization / Register Read
Specialization: A Path to Complexity-Effective Wide-Issue Superscalar
Processors* (Seznec, Toullec, Rochecouste - MICRO-35, 2002).

The package provides:

* a cycle-level clustered out-of-order processor simulator
  (:mod:`repro.core`) with conventional, write-specialized (WS) and WSRS
  register-file organisations (:mod:`repro.rename`) and the paper's
  cluster-allocation policies (:mod:`repro.allocation`);
* the substrates the evaluation needs: synthetic SPEC-shaped workloads
  (:mod:`repro.trace`), a 2Bc-gskew branch predictor
  (:mod:`repro.frontend`), a two-level memory hierarchy
  (:mod:`repro.memory`), and a mini-ISA with an assembler and functional
  executor (:mod:`repro.isa`);
* hardware cost models reproducing Table 1 (:mod:`repro.cost`);
* experiment drivers regenerating every table and figure
  (:mod:`repro.experiments`, also ``python -m repro``).

Quick start::

    from repro import simulate, wsrs_rc, spec_trace

    stats = simulate(wsrs_rc(512), spec_trace("gzip", 120_000),
                     measure=80_000, warmup=40_000)
    print(f"IPC {stats.ipc:.2f}")
"""

from repro.config import (
    MachineConfig,
    baseline_rr_256,
    config_by_name,
    figure4_configs,
    ws_rr,
    wsrs_rc,
    wsrs_rm,
)
from repro.core.processor import Processor, simulate
from repro.trace.model import OpClass, TraceInstruction
from repro.trace.profiles import benchmark_names, get_profile, spec_trace
from repro.trace.synthetic import SyntheticTraceGenerator, WorkloadProfile

__version__ = "1.0.0"

__all__ = [
    "MachineConfig",
    "OpClass",
    "Processor",
    "SyntheticTraceGenerator",
    "TraceInstruction",
    "WorkloadProfile",
    "baseline_rr_256",
    "benchmark_names",
    "config_by_name",
    "figure4_configs",
    "get_profile",
    "simulate",
    "spec_trace",
    "ws_rr",
    "wsrs_rc",
    "wsrs_rm",
    "__version__",
]
